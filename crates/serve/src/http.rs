//! The HTTP/JSON gateway: curl-able access to the same router the
//! framed transport uses.
//!
//! A deliberately small HTTP/1.1 server — request line, headers,
//! `Content-Length` bodies, keep-alive — not a general web server.
//! Endpoints:
//!
//! | Method | Path               | Body (request)           | Body (response)            |
//! |--------|--------------------|--------------------------|----------------------------|
//! | POST   | `/v1/compile`      | [`CompileRequest`] JSON  | envelope (`{"v":2,...}`)   |
//! | POST   | `/v1/search`       | [`SearchRequest`] JSON   | envelope                   |
//! | POST   | `/v1/characterize` | [`CharacterizeRequest`]  | envelope                   |
//! | POST   | `/v1/admin`        | [`AdminRequest`] JSON    | envelope                   |
//! | GET    | `/v1/metrics`      | —                        | [`ic_obs::Snapshot`] JSON  |
//! | GET    | `/v1/healthz`      | —                        | `{"status":"ok"}`          |
//!
//! POST response bodies are the protocol-2 envelope of the exact
//! [`Response`] the framed transport would produce — **byte-identical**
//! to an enveloped frame payload, which is how the differential e2e
//! test proves the transports equivalent.
//!
//! Status mapping: 200 success, 400 `bad_request`, 429 `busy` (with a
//! `Retry-After` header), 503 `shutting_down`, 504 `deadline_exceeded`,
//! 500 `internal`.

use crate::proto::{
    AdminRequest, CharacterizeRequest, CompileRequest, ErrorKind, ErrorResponse, Request, Response,
    SearchRequest,
};
use crate::router::Router;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use tokio::io::{AsyncRead, AsyncReadExt, AsyncWrite, AsyncWriteExt};

/// Cap on header block + body, to keep a hostile Content-Length from
/// provoking a huge allocation.
const MAX_HTTP_BYTES: usize = 64 * 1024 * 1024;

struct HttpRequest {
    method: String,
    path: String,
    body: Vec<u8>,
    keep_alive: bool,
}

/// Read one HTTP/1.1 request. `Ok(None)` on clean EOF before any byte.
async fn read_request<S: AsyncRead + Send + Unpin>(
    stream: &mut S,
    buf: &mut Vec<u8>,
) -> Result<Option<HttpRequest>, ()> {
    // Fill until the header terminator.
    let header_end = loop {
        if let Some(pos) = find_subslice(buf, b"\r\n\r\n") {
            break pos;
        }
        if buf.len() > MAX_HTTP_BYTES {
            return Err(());
        }
        let mut chunk = [0u8; 8192];
        let n = stream.read(&mut chunk).await.map_err(|_| ())?;
        if n == 0 {
            return if buf.is_empty() { Ok(None) } else { Err(()) };
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let header = std::str::from_utf8(&buf[..header_end]).map_err(|_| ())?;
    let mut lines = header.split("\r\n");
    let request_line = lines.next().ok_or(())?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(())?.to_string();
    let path = parts.next().ok_or(())?.to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive; 1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().map_err(|_| ())?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > MAX_HTTP_BYTES {
        return Err(());
    }
    let body_start = header_end + 4;
    while buf.len() < body_start + content_length {
        let mut chunk = [0u8; 8192];
        let n = stream.read(&mut chunk).await.map_err(|_| ())?;
        if n == 0 {
            return Err(());
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = buf[body_start..body_start + content_length].to_vec();
    buf.drain(..body_start + content_length);
    Ok(Some(HttpRequest {
        method,
        path,
        body,
        keep_alive,
    }))
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn status_line(code: u16) -> &'static str {
    match code {
        200 => "200 OK",
        400 => "400 Bad Request",
        404 => "404 Not Found",
        405 => "405 Method Not Allowed",
        429 => "429 Too Many Requests",
        500 => "500 Internal Server Error",
        503 => "503 Service Unavailable",
        504 => "504 Gateway Timeout",
        _ => "500 Internal Server Error",
    }
}

/// The status code a routed [`Response`] maps to.
fn status_for(response: &Response) -> u16 {
    match response {
        Response::Error(e) => match e.kind {
            ErrorKind::BadRequest => 400,
            ErrorKind::Busy => 429,
            ErrorKind::ShuttingDown => 503,
            ErrorKind::DeadlineExceeded => 504,
            ErrorKind::Internal => 500,
        },
        _ => 200,
    }
}

fn write_response_head(out: &mut Vec<u8>, code: u16, body_len: usize, extra: &str) {
    out.extend_from_slice(b"HTTP/1.1 ");
    out.extend_from_slice(status_line(code).as_bytes());
    out.extend_from_slice(b"\r\nContent-Type: application/json\r\nContent-Length: ");
    out.extend_from_slice(body_len.to_string().as_bytes());
    out.extend_from_slice(extra.as_bytes());
    out.extend_from_slice(b"\r\n\r\n");
}

/// Decode the inner request JSON for a POST endpoint.
fn decode_body(path: &str, body: &[u8]) -> Result<Request, String> {
    let text = std::str::from_utf8(body).map_err(|e| e.to_string())?;
    match path {
        "/v1/compile" => serde_json::from_str::<CompileRequest>(text)
            .map(Request::Compile)
            .map_err(|e| e.to_string()),
        "/v1/search" => serde_json::from_str::<SearchRequest>(text)
            .map(Request::Search)
            .map_err(|e| e.to_string()),
        "/v1/characterize" => serde_json::from_str::<CharacterizeRequest>(text)
            .map(Request::Characterize)
            .map_err(|e| e.to_string()),
        "/v1/admin" => serde_json::from_str::<AdminRequest>(text)
            .map(Request::Admin)
            .map_err(|e| e.to_string()),
        _ => unreachable!("decode_body called for unknown path"),
    }
}

/// Serve one HTTP connection (keep-alive) until close or parse error.
pub(crate) async fn serve_http<S>(router: Arc<Router>, mut stream: S)
where
    S: AsyncRead + AsyncWrite + Send + Unpin,
{
    let mut buf: Vec<u8> = Vec::with_capacity(8192);
    loop {
        let req = match read_request(&mut stream, &mut buf).await {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean EOF between requests
            Err(()) => return,  // torn or malformed head: close
        };
        let mut out = Vec::with_capacity(1024);
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/v1/compile" | "/v1/search" | "/v1/characterize" | "/v1/admin") => {
                match decode_body(&req.path, &req.body) {
                    Ok(request) => {
                        let response = router.route(request).await;
                        let body = crate::proto::envelope_json(&response);
                        let retry = match &response {
                            Response::Error(e) if e.kind == ErrorKind::Busy => e
                                .retry_after_ms
                                .map(|ms| format!("\r\nRetry-After: {}", ms.div_ceil(1000).max(1)))
                                .unwrap_or_default(),
                            _ => String::new(),
                        };
                        write_response_head(&mut out, status_for(&response), body.len(), &retry);
                        out.extend_from_slice(body.as_bytes());
                    }
                    Err(msg) => {
                        router.agg.bad_requests.fetch_add(1, Ordering::Relaxed);
                        let response = Response::Error(ErrorResponse::new(
                            ErrorKind::BadRequest,
                            format!("malformed request body: {msg}"),
                        ));
                        let body = crate::proto::envelope_json(&response);
                        write_response_head(&mut out, 400, body.len(), "");
                        out.extend_from_slice(body.as_bytes());
                    }
                }
            }
            ("GET", "/v1/metrics") => {
                let body = router.metrics_snapshot().to_json();
                write_response_head(&mut out, 200, body.len(), "");
                out.extend_from_slice(body.as_bytes());
            }
            ("GET", "/v1/healthz") => {
                let (code, body) = if router.is_draining() {
                    (503, "{\"status\":\"draining\"}")
                } else {
                    (200, "{\"status\":\"ok\"}")
                };
                write_response_head(&mut out, code, body.len(), "");
                out.extend_from_slice(body.as_bytes());
            }
            ("POST", _) | ("GET", _) => {
                let body = "{\"error\":\"unknown endpoint\"}";
                write_response_head(&mut out, 404, body.len(), "");
                out.extend_from_slice(body.as_bytes());
            }
            _ => {
                let body = "{\"error\":\"method not allowed\"}";
                write_response_head(&mut out, 405, body.len(), "");
                out.extend_from_slice(body.as_bytes());
            }
        }
        if stream.write_all(&out).await.is_err() || stream.flush().await.is_err() {
            return;
        }
        if !req.keep_alive {
            let _ = stream.shutdown().await;
            return;
        }
    }
}

/// The gateway path a [`Request`] maps to (used by the HTTP client
/// transport; kept beside the server dispatch so they cannot drift).
pub fn path_for(request: &Request) -> &'static str {
    match request {
        Request::Compile(_) => "/v1/compile",
        Request::Search(_) => "/v1/search",
        Request::Characterize(_) => "/v1/characterize",
        Request::Admin(_) => "/v1/admin",
    }
}

/// The inner-JSON body for a [`Request`] (the POST body format).
pub fn body_for(request: &Request) -> String {
    match request {
        Request::Compile(r) => serde_json::to_string(r),
        Request::Search(r) => serde_json::to_string(r),
        Request::Characterize(r) => serde_json::to_string(r),
        Request::Admin(r) => serde_json::to_string(r),
    }
    .expect("request serializes infallibly")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::JobContext;

    #[test]
    fn paths_and_bodies_round_trip() {
        let req = Request::Characterize(CharacterizeRequest {
            ctx: JobContext {
                name: "p".into(),
                source: "int main() { return 0; }".into(),
                machine: "tiny".into(),
                fuel: 1000,
                deadline_ms: 0,
            },
        });
        assert_eq!(path_for(&req), "/v1/characterize");
        let body = body_for(&req);
        let back: CharacterizeRequest = serde_json::from_str(&body).unwrap();
        assert_eq!(Request::Characterize(back), req);
    }

    #[test]
    fn status_mapping_is_stable() {
        use crate::proto::SearchResponse;
        let ok = Response::Search(SearchResponse {
            best_sequence: vec![],
            best_cost: 0.0,
            best_so_far: vec![],
            evaluations: 0,
            stats: Default::default(),
        });
        assert_eq!(status_for(&ok), 200);
        for (kind, code) in [
            (ErrorKind::BadRequest, 400),
            (ErrorKind::Busy, 429),
            (ErrorKind::ShuttingDown, 503),
            (ErrorKind::DeadlineExceeded, 504),
            (ErrorKind::Internal, 500),
        ] {
            let resp = Response::Error(ErrorResponse::new(kind, "x"));
            assert_eq!(status_for(&resp), code, "{kind:?}");
        }
    }
}
