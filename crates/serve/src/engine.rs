//! The daemon's warm core: one evaluator stack per workload+machine
//! context, shared across every connection.
//!
//! An [`Engine`] owns the full two-level evaluation engine PR 1–2 built
//! — a [`CachedEvaluator`] (whole-sequence memo table) wrapped around a
//! [`WorkloadEvaluator`] (pass-prefix compilation cache) — plus the
//! sequence space. The [`EnginePool`] keys engines by the same context
//! fingerprint `ic-kb` uses for persisted snapshots, so the second
//! client asking about a workload reuses everything the first client
//! paid for, and a fingerprint collision is impossible without the
//! costs being valid anyway.
//!
//! Request execution lives here too, behind a deadline guard: a search
//! that outlives its deadline stops evaluating immediately (remaining
//! lookups short-circuit to `+∞` *without* touching the shared memo
//! table) and is reported as cancelled.

use crate::proto::{
    CharacterizeResponse, CompileRequest, CompileResponse, ErrorKind, ErrorResponse, JobContext,
    Request, RequestStats, Response, SearchRequest, SearchResponse,
};
use ic_core::evalcache::context_fingerprint;
use ic_core::WorkloadEvaluator;
use ic_kb::KnowledgeBase;
use ic_machine::{Counter, MachineConfig};
use ic_obs::PredictStats;
use ic_passes::{Opt, PrefixCacheConfig};
use ic_predict::{select_and_train, PredictThenVerify, TrainedModel, TrainingSet};
use ic_search::{anneal, genetic, hillclimb, random, CachedEvaluator, Evaluator, SequenceSpace};
use ic_workloads::{Kind, Workload};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Resolve a machine config by protocol name.
pub fn machine_by_name(name: &str) -> Option<MachineConfig> {
    match name {
        "vliw" => Some(MachineConfig::vliw_c6713_like()),
        "amd" => Some(MachineConfig::superscalar_amd_like()),
        "tiny" => Some(MachineConfig::test_tiny()),
        _ => None,
    }
}

/// How the pool builds engines. Construct via [`EngineConfig::builder`]
/// — the builder validates, so a constructed config is always sane.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Record every pass the compile cache actually runs into a
    /// per-pass profiler (wall time + IR-size deltas). Observation-only:
    /// compiled IR and costs are bit-identical either way.
    pub profile_passes: bool,
    /// Pass-prefix compile-cache tuning.
    pub prefix_cache: PrefixCacheConfig,
    /// Attach a predict-then-verify cost model to every engine: `random`
    /// searches rank candidates with a learned model and simulate only
    /// the top [`EngineConfig::verify_fraction`]. Off by default — a
    /// predicting engine's search costs are estimates, opted into.
    pub predict: bool,
    /// Fraction of unknown candidates a predicting search verifies by
    /// real simulation, in `(0, 1]`. `1.0` is bit-identical to no
    /// prediction. Ignored unless `predict` is set.
    pub verify_fraction: f64,
    /// Retrain the cost model once this many new memo entries accumulate
    /// since the last (re)train. `0` disables online refresh. Ignored
    /// unless `predict` is set.
    pub retrain_rows: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::builder().build().expect("defaults validate")
    }
}

impl EngineConfig {
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            profile_passes: true,
            compile_cache_bytes: PrefixCacheConfig::default().byte_budget,
            predict: false,
            verify_fraction: 0.25,
            retrain_rows: 64,
        }
    }
}

/// Builder for [`EngineConfig`]; `build` validates.
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    profile_passes: bool,
    compile_cache_bytes: usize,
    predict: bool,
    verify_fraction: f64,
    retrain_rows: u64,
}

impl EngineConfigBuilder {
    /// Enable/disable per-pass profiling (default: enabled — the
    /// overhead budget is <5% on bench_compile, gated in CI).
    pub fn profile_passes(mut self, on: bool) -> Self {
        self.profile_passes = on;
        self
    }

    /// LRU byte budget of the pass-prefix compile cache.
    pub fn compile_cache_bytes(mut self, bytes: usize) -> Self {
        self.compile_cache_bytes = bytes;
        self
    }

    /// Enable predict-then-verify search (default: off).
    pub fn predict(mut self, on: bool) -> Self {
        self.predict = on;
        self
    }

    /// Verified fraction of unknown candidates, in `(0, 1]` (default
    /// 0.25).
    pub fn verify_fraction(mut self, f: f64) -> Self {
        self.verify_fraction = f;
        self
    }

    /// New memo entries between model refreshes; 0 disables (default
    /// 64).
    pub fn retrain_rows(mut self, n: u64) -> Self {
        self.retrain_rows = n;
        self
    }

    pub fn build(self) -> Result<EngineConfig, ic_obs::Error> {
        // A budget below one workload-sized module would make every
        // insertion evict itself — a config bug, not a tuning choice.
        if self.compile_cache_bytes < 4096 {
            return Err(ic_obs::Error::Config(format!(
                "compile_cache_bytes {} is below the 4096-byte floor",
                self.compile_cache_bytes
            )));
        }
        if self.predict && !(self.verify_fraction > 0.0 && self.verify_fraction <= 1.0) {
            return Err(ic_obs::Error::Config(format!(
                "verify_fraction {} is outside (0, 1]",
                self.verify_fraction
            )));
        }
        Ok(EngineConfig {
            profile_passes: self.profile_passes,
            prefix_cache: PrefixCacheConfig {
                byte_budget: self.compile_cache_bytes,
            },
            predict: self.predict,
            verify_fraction: self.verify_fraction,
            retrain_rows: self.retrain_rows,
        })
    }
}

/// The per-engine slice of predict-then-verify state: the program's
/// characterization features (the constant block of every prediction
/// row), the currently installed cost model, and accumulated
/// [`PredictStats`]. Present only when the engine was built with
/// [`EngineConfig::predict`].
pub struct PredictLayer {
    /// Verified fraction of unknown candidates per batch, `(0, 1]`.
    pub verify_fraction: f64,
    /// New memo entries between model refreshes; 0 disables refresh.
    pub retrain_rows: u64,
    /// `ic_features::combined_features` of the -O0 compile+run —
    /// identical to what `ic-core` stores in `ProgramRecord`s, so
    /// daemon rows join the same training sets.
    pub features: Vec<f64>,
    /// Installed model, swapped whole on refresh. Transient search
    /// wrappers clone it, so a retrain never stalls a running search.
    model: Mutex<Option<TrainedModel>>,
    /// Memo-table size at the last (re)train — the refresh trigger
    /// compares against it.
    trained_at: AtomicU64,
    /// Counters accumulated across every predicting search on this
    /// engine (per-search wrappers are transient).
    stats: Mutex<PredictStats>,
}

impl PredictLayer {
    /// Accumulated counters plus the instantaneous model
    /// version/training-rows of the currently installed model.
    pub fn stats(&self) -> PredictStats {
        let mut s = *self.stats.lock();
        if let Some(m) = self.model.lock().as_ref() {
            s.model_version = m.version;
            s.training_rows = m.rows;
        }
        s
    }

    /// Version of the installed model, 0 when none.
    pub fn model_version(&self) -> u64 {
        self.model.lock().as_ref().map_or(0, |m| m.version)
    }

    /// Fold one search wrapper's counters into the accumulator.
    fn absorb(&self, s: &PredictStats) {
        self.stats.lock().merge(s);
    }
}

/// Key of one memoizable request shape on an engine. Every field that
/// influences the response participates; the context itself does not
/// (the memo lives *on* the engine, which is keyed by context).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MemoKey {
    Compile {
        sequence: String,
        emit_ir: bool,
    },
    Search {
        strategy: String,
        budget: usize,
        seed: u64,
    },
    Characterize,
}

impl MemoKey {
    /// The memo key for a data-plane request, or `None` when the
    /// request's response is not replayable:
    ///
    /// - Admin requests observe mutable server state.
    /// - Searches on a *predicting* engine depend on the currently
    ///   installed cost model, which online retraining replaces.
    ///
    /// Everything else is deterministic — compiles and characterizes
    /// re-simulate a fixed program, and non-predict searches are
    /// bit-identical warm or cold by the daemon's core contract — so a
    /// cached response equals a recomputed one.
    pub fn for_request(req: &Request, predicting: bool) -> Option<MemoKey> {
        match req {
            Request::Compile(c) => Some(MemoKey::Compile {
                sequence: c.sequence.join(" "),
                emit_ir: c.emit_ir,
            }),
            Request::Search(s) if !predicting => Some(MemoKey::Search {
                strategy: s.strategy.clone(),
                budget: s.budget,
                seed: s.seed,
            }),
            Request::Search(_) => None,
            Request::Characterize(_) => Some(MemoKey::Characterize),
            Request::Admin(_) => None,
        }
    }
}

/// A bounded memo of fully-rendered responses for repeated identical
/// requests — the serving layer's answer to "the same 8 sequences get
/// compiled by every client": a warm hit skips the queue, the engine,
/// and the simulator entirely.
///
/// Stored responses carry *synthesized* request stats (zero times,
/// cache counters as an all-hit run would report them), which also
/// makes warm responses byte-deterministic across transports — the
/// property the HTTP-vs-framed differential e2e pins.
#[derive(Default)]
pub struct ResponseMemo {
    map: Mutex<HashMap<MemoKey, Response>>,
    hits: AtomicU64,
}

/// Entry cap per engine; at typical response sizes (~1 KiB) this bounds
/// the memo around 4 MiB. Eviction is wholesale — repeated identical
/// requests re-warm in one round trip each.
const RESPONSE_MEMO_MAX: usize = 4096;

impl ResponseMemo {
    pub fn get(&self, key: &MemoKey) -> Option<Response> {
        let found = self.map.lock().get(key).cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    pub fn put(&self, key: MemoKey, response: Response) {
        let mut map = self.map.lock();
        if map.len() >= RESPONSE_MEMO_MAX {
            map.clear();
        }
        map.insert(key, response);
    }

    /// Served-from-memo count (the shard's `fast_path_hits` gauge).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

/// Replace a successful response's measured stats with the
/// deterministic form the memo stores: zero times (a memo hit costs no
/// queueing and sub-microsecond service) and the cache counters an
/// all-hit replay would produce. Error responses are never memoized.
pub fn memoized_form(response: &Response) -> Response {
    let mut resp = response.clone();
    match &mut resp {
        Response::Compile(c) => {
            c.stats = RequestStats {
                eval_hits: 1,
                ..RequestStats::default()
            };
        }
        Response::Search(s) => {
            s.stats = RequestStats {
                eval_hits: s.evaluations as u64,
                ..RequestStats::default()
            };
        }
        Response::Characterize(c) => {
            c.stats = RequestStats {
                eval_hits: 1,
                ..RequestStats::default()
            };
        }
        _ => {}
    }
    resp
}

/// One warm evaluation stack for a single workload+machine context.
pub struct Engine {
    /// Context fingerprint (`ic_core::evalcache::context_fingerprint`) —
    /// the pool key and the knowledge-base snapshot key.
    pub fingerprint: String,
    pub workload: Workload,
    pub config: MachineConfig,
    pub space: Arc<SequenceSpace>,
    pub eval: CachedEvaluator<WorkloadEvaluator>,
    /// Predict-then-verify state; `None` when prediction is off.
    pub predict: Option<PredictLayer>,
    /// Fully-rendered responses for repeated identical requests.
    pub memo: ResponseMemo,
}

impl Engine {
    fn build(ctx: &JobContext, cfg: &EngineConfig) -> Result<Engine, ErrorResponse> {
        let config = machine_by_name(&ctx.machine).ok_or_else(|| {
            ErrorResponse::new(
                ErrorKind::BadRequest,
                format!("unknown machine `{}` (vliw|amd|tiny)", ctx.machine),
            )
        })?;
        // Validate the frontend up front so a syntax error is a
        // structured BadRequest, not a worker panic.
        ic_lang::compile(&ctx.name, &ctx.source)
            .map_err(|e| ErrorResponse::new(ErrorKind::BadRequest, format!("frontend: {e}")))?;
        let workload = Workload {
            name: ctx.name.clone(),
            kind: Kind::AluBound,
            source: ctx.source.clone(),
            fuel: ctx.fuel,
            meta: None,
        };
        let space = Arc::new(SequenceSpace::paper());
        let profiler = cfg.profile_passes.then(ic_passes::profiler);
        let eval = CachedEvaluator::new(
            space.clone(),
            WorkloadEvaluator::with_profiler(&workload, &config, cfg.prefix_cache, profiler),
        );
        let predict = cfg.predict.then(|| {
            // Characterize at -O0 exactly like `ic-core` does, so the
            // program block of every prediction row matches the rows the
            // knowledge base's training sets are assembled from.
            let (module, _) = eval.inner().compile(&[]);
            let features = match eval.inner().run(&[]) {
                Ok(r) => ic_features::combined_features(&module, &r.counters),
                // A workload that can't finish -O0 under its fuel still
                // serves; its engine just predicts on sequence features
                // alone.
                Err(_) => Vec::new(),
            };
            PredictLayer {
                verify_fraction: cfg.verify_fraction,
                retrain_rows: cfg.retrain_rows,
                features,
                model: Mutex::new(None),
                trained_at: AtomicU64::new(0),
                stats: Mutex::new(PredictStats::default()),
            }
        });
        Ok(Engine {
            fingerprint: context_fingerprint(&workload, &config),
            workload,
            config,
            space,
            eval,
            predict,
            memo: ResponseMemo::default(),
        })
    }

    /// Retrain this engine's cost model from the knowledge base when
    /// enough new evaluations have accumulated since the last train:
    /// assemble the machine-restricted training set, run model
    /// selection, bump the per-context version, persist the record, and
    /// install the new model. Returns `true` when a model was installed.
    ///
    /// Call *after* write-through ([`EnginePool::flush_to_kb`]) so the
    /// training set includes this engine's latest evaluations.
    pub fn maybe_retrain(&self, kb: &mut KnowledgeBase, unix_ms: u64) -> bool {
        let Some(layer) = &self.predict else {
            return false;
        };
        if layer.retrain_rows == 0 {
            return false;
        }
        let have = self.eval.len() as u64;
        let seen = layer.trained_at.load(Ordering::Relaxed);
        let first = layer.model.lock().is_none();
        if !first && have.saturating_sub(seen) < layer.retrain_rows {
            return false;
        }
        let ts = TrainingSet::assemble_for_machine(kb, &self.space, &self.config.name);
        let Some(mut tm) = select_and_train(&ts, 0x1c) else {
            return false;
        };
        tm.version = kb.model_for(&self.fingerprint).map_or(1, |m| m.version + 1);
        kb.upsert_model(tm.to_record(&self.fingerprint, unix_ms));
        layer.trained_at.store(have, Ordering::Relaxed);
        *layer.model.lock() = Some(tm);
        layer.stats.lock().retrains += 1;
        true
    }

    /// This engine's slice of the unified observability snapshot:
    /// eval-cache, compile-cache, and simulator (decode-cache +
    /// throughput) activity plus per-pass profiling rows, labelled with
    /// the context fingerprint.
    pub fn metrics_snapshot(&self) -> ic_obs::Snapshot {
        let mut snap = ic_obs::Snapshot::for_context(self.fingerprint.clone());
        snap.eval_cache = self.eval.stats();
        snap.compile_cache = self.eval.inner().compile_stats();
        snap.sim = self.eval.inner().sim_stats();
        if let Some(prof) = self.eval.inner().profiler() {
            snap.passes = prof.rows();
        }
        if let Some(layer) = &self.predict {
            snap.predict = layer.stats();
        }
        snap
    }
}

/// The context fingerprint a request would route and cache under,
/// without building an engine — the router uses this to pick a shard
/// before any heavy work happens. Fails the same way engine
/// construction would on an unknown machine, so bad requests are
/// rejected at the door.
pub fn fingerprint_for(ctx: &JobContext) -> Result<String, ErrorResponse> {
    let config = machine_by_name(&ctx.machine).ok_or_else(|| {
        ErrorResponse::new(
            ErrorKind::BadRequest,
            format!("unknown machine `{}` (vliw|amd|tiny)", ctx.machine),
        )
    })?;
    let probe = Workload {
        name: ctx.name.clone(),
        kind: Kind::AluBound,
        source: ctx.source.clone(),
        fuel: ctx.fuel,
        meta: None,
    };
    Ok(context_fingerprint(&probe, &config))
}

/// The pool of warm engines, keyed by context fingerprint.
#[derive(Default)]
pub struct EnginePool {
    config: EngineConfig,
    engines: Mutex<HashMap<String, Arc<Engine>>>,
}

impl EnginePool {
    /// A pool with an explicit (already-validated) engine config.
    pub fn with_config(config: EngineConfig) -> Self {
        EnginePool {
            config,
            engines: Mutex::new(HashMap::new()),
        }
    }

    /// A pool with default engine config.
    #[deprecated(note = "use EnginePool::with_config(EngineConfig::builder()...build()?)")]
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch the engine for `ctx`, building (and warming from `kb`'s
    /// persisted snapshot) on first sight.
    pub fn get_or_create(
        &self,
        ctx: &JobContext,
        kb: &Mutex<KnowledgeBase>,
    ) -> Result<Arc<Engine>, ErrorResponse> {
        // Cheap pre-key: fingerprinting needs the config, so probe by
        // (machine, name, fuel, source) only after a full build once.
        // Build outside the map lock — engine construction compiles the
        // workload, which can take milliseconds.
        let fingerprint = fingerprint_for(ctx)?;
        if let Some(e) = self.engines.lock().get(&fingerprint) {
            return Ok(e.clone());
        }
        let engine = Arc::new(Engine::build(ctx, &self.config)?);
        {
            let mut kb = kb.lock();
            let warmed = ic_core::evalcache::warm_from_kb(&engine.eval, &kb, &fingerprint);
            if warmed > 0 {
                eprintln!(
                    "ic-serve: warmed {warmed} cached evaluations for {}",
                    engine.fingerprint
                );
            }
            if let Some(layer) = &engine.predict {
                // Register the program so this engine's evaluations join
                // future training sets, and load the persisted model (if
                // any) so a restarted daemon predicts from request one.
                let known = kb
                    .programs
                    .iter()
                    .any(|p| p.program == engine.workload.name);
                if !layer.features.is_empty() && !known {
                    kb.upsert_program(ic_kb::ProgramRecord {
                        program: engine.workload.name.clone(),
                        feature_names: ic_features::combined_feature_names(),
                        features: layer.features.clone(),
                        suite: None,
                    });
                }
                if let Some(tm) = kb
                    .model_for(&fingerprint)
                    .and_then(TrainedModel::from_record)
                {
                    layer
                        .trained_at
                        .store(engine.eval.len() as u64, Ordering::Relaxed);
                    *layer.model.lock() = Some(tm);
                }
            }
        }
        let mut map = self.engines.lock();
        // A concurrent first-sight may have raced us; keep the winner so
        // every connection shares one memo table.
        Ok(map
            .entry(fingerprint)
            .or_insert_with(|| engine.clone())
            .clone())
    }

    /// Snapshot every engine's memo table into `kb`. Returns the total
    /// number of entries persisted.
    pub fn flush_to_kb(&self, kb: &Mutex<KnowledgeBase>) -> u64 {
        let engines: Vec<Arc<Engine>> = self.engines.lock().values().cloned().collect();
        let mut total = 0u64;
        let mut kb = kb.lock();
        for e in engines {
            total += kb.merge_eval_cache(&e.fingerprint, e.eval.snapshot()) as u64;
        }
        total
    }

    /// All resident engines (for stats aggregation).
    pub fn engines(&self) -> Vec<Arc<Engine>> {
        self.engines.lock().values().cloned().collect()
    }

    /// The already-built engine for `fingerprint`, if resident — the
    /// router's fast-path probe (never builds).
    pub fn get(&self, fingerprint: &str) -> Option<Arc<Engine>> {
        self.engines.lock().get(fingerprint).cloned()
    }

    pub fn len(&self) -> usize {
        self.engines.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Evaluator wrapper that enforces a wall-clock deadline: once the
/// deadline passes, every further lookup returns `+∞` immediately and
/// never reaches the shared cache (so cancellation cannot poison it).
struct DeadlineGuard<'a> {
    inner: &'a dyn Evaluator,
    deadline: Option<Instant>,
    cancelled: AtomicBool,
}

impl DeadlineGuard<'_> {
    fn expired(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(d) if Instant::now() > d => {
                self.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

impl Evaluator for DeadlineGuard<'_> {
    fn evaluate(&self, seq: &[Opt]) -> f64 {
        if self.expired() {
            return f64::INFINITY;
        }
        self.inner.evaluate(seq)
    }
}

/// Delta-capture around an engine's shared cache counters, for
/// per-request stats.
pub struct StatsCapture {
    started: Instant,
    eval_hits: u64,
    eval_misses: u64,
    compile_hits: u64,
    compile_misses: u64,
}

impl StatsCapture {
    pub fn begin(engine: &Engine) -> Self {
        let e = engine.eval.stats();
        let c = engine.eval.inner().compile_stats();
        StatsCapture {
            started: Instant::now(),
            eval_hits: e.hits,
            eval_misses: e.misses,
            compile_hits: c.hits,
            compile_misses: c.misses,
        }
    }

    pub fn finish(self, engine: &Engine, queue_ms: f64) -> RequestStats {
        let e = engine.eval.stats();
        let c = engine.eval.inner().compile_stats();
        RequestStats {
            queue_ms,
            service_ms: self.started.elapsed().as_secs_f64() * 1e3,
            eval_hits: e.hits.saturating_sub(self.eval_hits),
            eval_misses: e.misses.saturating_sub(self.eval_misses),
            compile_hits: c.hits.saturating_sub(self.compile_hits),
            compile_misses: c.misses.saturating_sub(self.compile_misses),
        }
    }
}

fn parse_sequence(names: &[String]) -> Result<Vec<Opt>, ErrorResponse> {
    names
        .iter()
        .map(|s| {
            Opt::from_name(s).ok_or_else(|| {
                ErrorResponse::new(ErrorKind::BadRequest, format!("unknown optimization `{s}`"))
            })
        })
        .collect()
}

/// Serve a compile request on `engine`. The measured cost is written
/// through to the shared eval cache, so compiles warm later searches.
pub fn run_compile(
    engine: &Engine,
    req: &CompileRequest,
    queue_ms: f64,
) -> Result<CompileResponse, ErrorResponse> {
    let seq = parse_sequence(&req.sequence)?;
    let cap = StatsCapture::begin(engine);
    let outcome = engine.eval.inner().run(&seq);
    let resp = match outcome {
        Ok(r) => {
            if let Some(idx) = engine.space.encode(&seq) {
                engine.eval.warm([(idx, r.cycles() as f64)]);
            }
            CompileResponse {
                cycles: r.cycles() as f64,
                instructions: r.instructions(),
                result: r.ret_i64().unwrap_or(0),
                counters: Counter::ALL
                    .iter()
                    .map(|c| (c.name().to_string(), r.counters.get(*c)))
                    .collect(),
                ir: req.emit_ir.then(|| {
                    let (m, _) = engine.eval.inner().compile(&seq);
                    ic_ir::print::module_to_string(&m)
                }),
                stats: RequestStats::default(),
            }
        }
        // Fuel exhaustion is a valid measurement (+∞), not an error:
        // the CLI reports it the same way the search engine scores it.
        Err(_) => {
            if let Some(idx) = engine.space.encode(&seq) {
                engine.eval.warm([(idx, f64::INFINITY)]);
            }
            CompileResponse {
                cycles: f64::INFINITY,
                instructions: 0,
                result: 0,
                counters: Vec::new(),
                ir: None,
                stats: RequestStats::default(),
            }
        }
    };
    let stats = cap.finish(engine, queue_ms);
    Ok(CompileResponse { stats, ..resp })
}

/// Serve a search request on `engine` under `deadline`.
pub fn run_search(
    engine: &Engine,
    req: &SearchRequest,
    deadline: Option<Instant>,
    queue_ms: f64,
) -> Result<SearchResponse, ErrorResponse> {
    let cap = StatsCapture::begin(engine);
    // Predict-then-verify path: batched strategies route through a
    // transient wrapper over this engine's exact cache. The wrapper
    // needs the concrete `CachedEvaluator` (predictions must probe and
    // write through the real memo), so the deadline guard cannot sit in
    // between — a predicting search honors its deadline at batch entry
    // only. The trade is sound: prediction exists to make the batch
    // cheap.
    if let Some(layer) = engine.predict.as_ref().filter(|_| req.strategy == "random") {
        if deadline.is_some_and(|d| Instant::now() > d) {
            return Err(ErrorResponse::new(
                ErrorKind::DeadlineExceeded,
                "deadline elapsed before the search started",
            ));
        }
        let model = layer.model.lock().clone();
        let ptv = PredictThenVerify::new(
            &engine.eval,
            layer.features.clone(),
            model,
            layer.verify_fraction,
        );
        let r = ic_predict::run_random(&engine.space, &ptv, req.budget, req.seed);
        layer.absorb(&ptv.stats());
        let stats = cap.finish(engine, queue_ms);
        let evaluations = r.evaluations();
        return Ok(SearchResponse {
            best_sequence: r.best_seq.iter().map(|o| o.name().to_string()).collect(),
            best_cost: r.best_cost,
            best_so_far: r.best_so_far,
            evaluations,
            stats,
        });
    }
    let guard = DeadlineGuard {
        inner: &engine.eval,
        deadline,
        cancelled: AtomicBool::new(false),
    };
    let space = &engine.space;
    let r = match req.strategy.as_str() {
        "random" => random::run(space, &guard, req.budget, req.seed),
        "hillclimb" => hillclimb::run(space, &guard, req.budget, 20, req.seed),
        "genetic" => genetic::run(
            space,
            &guard,
            req.budget,
            &genetic::GaConfig::default(),
            req.seed,
        ),
        "anneal" => anneal::run(
            space,
            &guard,
            req.budget,
            &anneal::AnnealConfig::default(),
            req.seed,
        ),
        other => {
            return Err(ErrorResponse::new(
                ErrorKind::BadRequest,
                format!("unknown strategy `{other}` (random|hillclimb|genetic|anneal)"),
            ))
        }
    };
    if guard.cancelled.load(Ordering::Relaxed) {
        return Err(ErrorResponse::new(
            ErrorKind::DeadlineExceeded,
            format!(
                "search cancelled mid-run after {} of {} evaluations",
                r.evaluated.iter().filter(|(_, c)| c.is_finite()).count(),
                req.budget
            ),
        ));
    }
    let stats = cap.finish(engine, queue_ms);
    let evaluations = r.evaluations();
    Ok(SearchResponse {
        best_sequence: r.best_seq.iter().map(|o| o.name().to_string()).collect(),
        best_cost: r.best_cost,
        best_so_far: r.best_so_far,
        evaluations,
        stats,
    })
}

/// Serve a characterize request: the -O0 counter vector.
pub fn run_characterize(
    engine: &Engine,
    queue_ms: f64,
) -> Result<CharacterizeResponse, ErrorResponse> {
    let cap = StatsCapture::begin(engine);
    match engine.eval.inner().run(&[]) {
        Ok(r) => {
            let stats = cap.finish(engine, queue_ms);
            Ok(CharacterizeResponse {
                counters: Counter::ALL
                    .iter()
                    .map(|c| (c.name().to_string(), r.counters.get(*c)))
                    .collect(),
                cycles: r.cycles() as f64,
                stats,
            })
        }
        Err(e) => Err(ErrorResponse::new(
            ErrorKind::BadRequest,
            format!("baseline run failed: {e}"),
        )),
    }
}
