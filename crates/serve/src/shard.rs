//! Worker shards: the unit of state ownership inside the daemon.
//!
//! Every workload+machine context fingerprint maps — by a stable hash,
//! [`shard_for`] — to exactly one shard. A shard owns its warm
//! [`EnginePool`], a bounded submission queue, and dedicated OS worker
//! threads, so two requests for *different* contexts never contend on
//! the same queue lock or engine map. Routing is pure: the same
//! fingerprint lands on the same shard across connections, restarts,
//! and transports, which is what keeps caches warm and results
//! deterministic under resharding-free operation.
//!
//! The shard layer is deliberately dumb: it knows how to queue, pop,
//! and count. What a job *does* lives in [`crate::router`], which owns
//! the shared knowledge base and aggregate accounting.

use crate::engine::EnginePool;
use crate::proto::{Request, Response};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// The shard index for a context fingerprint: FNV-1a 64 over the
/// fingerprint bytes, modulo the shard count. Pure and dependency-free
/// — the mapping survives restarts, so a redeployed daemon re-warms the
/// same engines on the same shards (and tests can predict placement).
pub fn shard_for(fingerprint: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in fingerprint.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// One queued data-plane job. The reply side is a tokio oneshot so the
/// async connection task can await it without pinning a thread.
pub(crate) struct Job {
    pub request: Request,
    pub enqueued: Instant,
    pub deadline: Option<Instant>,
    pub reply: tokio::sync::oneshot::Sender<Response>,
}

/// Why a push was refused.
pub(crate) enum PushError {
    Full,
    ShuttingDown,
}

/// Bounded MPMC queue with condvar wakeups. The vendored `parking_lot`
/// has no condvar, so the queue runs on std primitives (guards recover
/// from poisoning — a panicking worker must not wedge the daemon).
struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
    capacity: usize,
}

impl JobQueue {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.jobs.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// One shard: a warm engine pool plus the bounded queue feeding its
/// workers. Counters are monotonic and exported per shard in the
/// unified snapshot ([`ic_obs::ShardStats`]).
pub(crate) struct Shard {
    /// Position in the router's shard table (stable for a config).
    pub index: usize,
    /// This shard's engines — never touched by any other shard.
    pub engines: EnginePool,
    queue: JobQueue,
    /// Jobs fully executed by this shard's workers.
    pub executed: AtomicU64,
    /// Jobs refused at admission (queue full).
    pub rejected: AtomicU64,
    /// Jobs cancelled by their deadline (queued or mid-run).
    pub cancelled: AtomicU64,
    /// Requests answered from the response memo without queueing.
    pub fast_path_hits: AtomicU64,
}

impl Shard {
    pub fn new(index: usize, engines: EnginePool, queue_capacity: usize) -> Self {
        Shard {
            index,
            engines,
            queue: JobQueue {
                jobs: Mutex::new(VecDeque::new()),
                ready: Condvar::new(),
                capacity: queue_capacity.max(1),
            },
            executed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            fast_path_hits: AtomicU64::new(0),
        }
    }

    /// Admission control: accept the job or refuse it *immediately* —
    /// a full shard must never make a caller wait.
    pub fn push(&self, job: Job, draining: bool) -> Result<(), PushError> {
        if draining {
            return Err(PushError::ShuttingDown);
        }
        let mut q = self.queue.lock();
        if q.len() >= self.queue.capacity {
            drop(q);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(PushError::Full);
        }
        q.push_back(job);
        drop(q);
        self.queue.ready.notify_one();
        Ok(())
    }

    /// Pop a job, blocking. Returns `None` once `draining` is set and
    /// the queue is empty (the drain contract: queued work finishes).
    pub fn pop(&self, draining: &AtomicBool) -> Option<Job> {
        let mut q = self.queue.lock();
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if draining.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .queue
                .ready
                .wait_timeout(q, std::time::Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
    }

    /// Wake every worker (used when shutdown begins).
    pub fn notify_all(&self) {
        self.queue.ready.notify_all();
    }

    pub fn depth(&self) -> usize {
        self.queue.lock().len()
    }

    pub fn capacity(&self) -> usize {
        self.queue.capacity
    }

    /// This shard's block of the unified snapshot.
    pub fn stats(&self) -> ic_obs::ShardStats {
        ic_obs::ShardStats {
            shard: self.index as u64,
            queue_depth: self.depth() as u64,
            queue_capacity: self.queue.capacity as u64,
            engines: self.engines.len() as u64,
            executed: self.executed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            fast_path_hits: self.fast_path_hits.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_for_is_stable_across_processes() {
        // Frozen expectations: the hash is part of the operational
        // contract (same fingerprint → same shard after a restart), so
        // a change here is a breaking change, not a refactor.
        assert_eq!(shard_for("", 4), shard_for("", 4));
        let placements: Vec<usize> = ["wl:a|m:vliw", "wl:b|m:amd", "wl:c|m:tiny", "wl:d|m:vliw"]
            .iter()
            .map(|fp| shard_for(fp, 4))
            .collect();
        let again: Vec<usize> = ["wl:a|m:vliw", "wl:b|m:amd", "wl:c|m:tiny", "wl:d|m:vliw"]
            .iter()
            .map(|fp| shard_for(fp, 4))
            .collect();
        assert_eq!(placements, again);
        for &p in &placements {
            assert!(p < 4);
        }
    }

    #[test]
    fn shard_for_spreads_distinct_fingerprints() {
        // 64 distinct fingerprints over 4 shards: every shard gets
        // some — the FNV mix must not collapse the keyspace.
        let mut hit = [false; 4];
        for i in 0..64 {
            hit[shard_for(&format!("wl:prog{i}|m:vliw"), 4)] = true;
        }
        assert!(hit.iter().all(|&h| h), "some shard never selected: {hit:?}");
    }

    #[test]
    fn one_shard_never_changes_the_mapping() {
        for i in 0..16 {
            assert_eq!(shard_for(&format!("fp{i}"), 1), 0);
        }
    }
}
