//! Async transport for the length-prefixed framed protocol.
//!
//! One task per connection. Reads are buffered: a single syscall can
//! pull many pipelined frames, and responses are written back through a
//! batch buffer that is only flushed once the input buffer holds no
//! further complete frame — so a client pipelining N requests costs
//! O(1) syscalls per batch instead of per request.
//!
//! Response framing mirrors the request (the versioning contract in
//! [`crate::proto`]): an enveloped request gets an enveloped response,
//! a bare protocol-1 request gets a bare response.

use crate::proto::{
    decode_versioned, envelope_json, ErrorResponse, FrameError, Request, Response, MAX_FRAME_BYTES,
};
use crate::router::Router;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use tokio::io::{AsyncRead, AsyncReadExt, AsyncWrite, AsyncWriteExt};

/// Buffered frame codec over an async byte stream.
pub(crate) struct FrameConn<S> {
    stream: S,
    rbuf: Vec<u8>,
    rpos: usize,
    wbuf: Vec<u8>,
}

impl<S: AsyncRead + AsyncWrite + Send + Unpin> FrameConn<S> {
    pub fn new(stream: S) -> Self {
        FrameConn {
            stream,
            rbuf: Vec::with_capacity(16 * 1024),
            rpos: 0,
            wbuf: Vec::with_capacity(16 * 1024),
        }
    }

    /// Read more bytes from the stream into the buffer. Returns the
    /// number read (0 = EOF).
    pub async fn fill(&mut self) -> std::io::Result<usize> {
        if self.rpos == self.rbuf.len() {
            self.rbuf.clear();
            self.rpos = 0;
        } else if self.rpos > 8 * 1024 {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
        // A wide read window: one syscall can pull hundreds of
        // pipelined frames, and the whole batch flushes in one write.
        let mut chunk = [0u8; 64 * 1024];
        let n = self.stream.read(&mut chunk).await?;
        self.rbuf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Parse one complete frame out of the buffer without any IO.
    /// `Ok(None)` means "need more bytes".
    pub fn try_parse(&mut self) -> Result<Option<String>, FrameError> {
        let buf = &self.rbuf[self.rpos..];
        let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
            if buf.len() > 32 {
                return Err(FrameError::BadLength(
                    "length prefix longer than 32 bytes".into(),
                ));
            }
            return Ok(None);
        };
        let header =
            std::str::from_utf8(&buf[..nl]).map_err(|e| FrameError::BadLength(e.to_string()))?;
        let len: usize = header
            .trim()
            .parse()
            .map_err(|_| FrameError::BadLength(header.trim().to_string()))?;
        if len > MAX_FRAME_BYTES {
            return Err(FrameError::BadLength(format!(
                "{len} bytes exceeds the {MAX_FRAME_BYTES}-byte frame cap"
            )));
        }
        let total = nl + 1 + len + 1;
        if buf.len() < total {
            return Ok(None);
        }
        if buf[total - 1] != b'\n' {
            return Err(FrameError::BadPayload("missing frame terminator".into()));
        }
        let payload = String::from_utf8(buf[nl + 1..nl + 1 + len].to_vec())
            .map_err(|e| FrameError::BadPayload(e.to_string()))?;
        self.rpos += total;
        Ok(Some(payload))
    }

    /// Queue one frame into the write buffer (no IO).
    pub fn queue_frame(&mut self, json: &str) {
        self.wbuf
            .extend_from_slice(json.len().to_string().as_bytes());
        self.wbuf.push(b'\n');
        self.wbuf.extend_from_slice(json.as_bytes());
        self.wbuf.push(b'\n');
    }

    /// Write the batched responses out.
    pub async fn flush(&mut self) -> std::io::Result<()> {
        if self.wbuf.is_empty() {
            return Ok(());
        }
        self.stream.write_all(&self.wbuf).await?;
        self.wbuf.clear();
        self.stream.flush().await
    }
}

/// Serve one framed-protocol connection until EOF or a fatal frame
/// error. Recoverable errors (bad JSON, unsupported protocol version)
/// get a structured error response; a torn stream just closes.
pub(crate) async fn serve_framed<S>(router: Arc<Router>, stream: S)
where
    S: AsyncRead + AsyncWrite + Send + Unpin,
{
    let mut conn = FrameConn::new(stream);
    loop {
        // Drain every complete frame already buffered, then flush the
        // response batch in one write.
        loop {
            let json = match conn.try_parse() {
                Ok(Some(json)) => json,
                Ok(None) => break,
                // Framing is byte-position dependent: once a length
                // prefix or terminator is wrong there is no safe way to
                // resynchronize, so the stream closes.
                Err(_) => {
                    let _ = conn.flush().await;
                    return;
                }
            };
            match decode_versioned::<Request>(&json) {
                Ok(vm) => {
                    let enveloped = vm.enveloped;
                    let response = router.route(vm.msg).await;
                    conn.queue_frame(&render_response(&response, enveloped));
                }
                Err(e) => {
                    // The frame itself was sound — answer structurally
                    // and keep the connection. A version error proves
                    // the peer speaks envelopes; plain bad JSON gets
                    // the bare form any peer understands.
                    router.agg.bad_requests.fetch_add(1, Ordering::Relaxed);
                    let enveloped = matches!(e, FrameError::Version { .. });
                    let response = Response::Error(ErrorResponse::from(e.to_error()));
                    conn.queue_frame(&render_response(&response, enveloped));
                }
            }
        }
        if conn.flush().await.is_err() {
            return; // client went away
        }
        match conn.fill().await {
            Ok(0) => return, // EOF (torn mid-frame or clean — either way, done)
            Ok(_) => {}
            Err(_) => return,
        }
    }
}

/// Serialize a response in the form the request arrived in.
pub(crate) fn render_response(response: &Response, enveloped: bool) -> String {
    if enveloped {
        envelope_json(response)
    } else {
        serde_json::to_string(response).expect("response serializes infallibly")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory async stream for codec tests.
    struct MemStream {
        input: std::io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl AsyncRead for MemStream {
        fn poll_read(
            &mut self,
            _cx: &mut std::task::Context<'_>,
            buf: &mut [u8],
        ) -> std::task::Poll<std::io::Result<usize>> {
            std::task::Poll::Ready(std::io::Read::read(&mut self.input, buf))
        }
    }

    impl AsyncWrite for MemStream {
        fn poll_write(
            &mut self,
            _cx: &mut std::task::Context<'_>,
            buf: &[u8],
        ) -> std::task::Poll<std::io::Result<usize>> {
            self.output.extend_from_slice(buf);
            std::task::Poll::Ready(Ok(buf.len()))
        }
        fn poll_flush(
            &mut self,
            _cx: &mut std::task::Context<'_>,
        ) -> std::task::Poll<std::io::Result<()>> {
            std::task::Poll::Ready(Ok(()))
        }
        fn poll_shutdown(
            &mut self,
            _cx: &mut std::task::Context<'_>,
        ) -> std::task::Poll<std::io::Result<()>> {
            std::task::Poll::Ready(Ok(()))
        }
    }

    #[test]
    fn pipelined_frames_parse_from_one_buffer() {
        let rt = tokio::runtime::Builder::new_current_thread()
            .enable_all()
            .build()
            .unwrap();
        rt.block_on(async {
            let mut wire = Vec::new();
            for i in 0..5 {
                let json = format!("{{\"n\":{i}}}");
                wire.extend_from_slice(json.len().to_string().as_bytes());
                wire.push(b'\n');
                wire.extend_from_slice(json.as_bytes());
                wire.push(b'\n');
            }
            let mut conn = FrameConn::new(MemStream {
                input: std::io::Cursor::new(wire),
                output: Vec::new(),
            });
            assert!(conn.fill().await.unwrap() > 0);
            for i in 0..5 {
                let f = conn.try_parse().unwrap().expect("frame buffered");
                assert_eq!(f, format!("{{\"n\":{i}}}"));
            }
            assert!(conn.try_parse().unwrap().is_none(), "buffer drained");
        });
    }

    #[test]
    fn split_frame_waits_for_more_bytes() {
        let rt = tokio::runtime::Builder::new_current_thread()
            .enable_all()
            .build()
            .unwrap();
        rt.block_on(async {
            // Deliver a frame split across two reads.
            let json = "{\"x\":42}";
            let mut wire = Vec::new();
            wire.extend_from_slice(json.len().to_string().as_bytes());
            wire.push(b'\n');
            wire.extend_from_slice(json.as_bytes());
            wire.push(b'\n');
            let (a, b) = wire.split_at(5);
            let mut conn = FrameConn::new(MemStream {
                input: std::io::Cursor::new(a.to_vec()),
                output: Vec::new(),
            });
            conn.fill().await.unwrap();
            assert!(conn.try_parse().unwrap().is_none(), "incomplete frame");
            conn.stream.input = std::io::Cursor::new(b.to_vec());
            conn.fill().await.unwrap();
            assert_eq!(conn.try_parse().unwrap().unwrap(), json);
        });
    }

    #[test]
    fn garbage_length_prefix_is_fatal() {
        let mut conn = FrameConn::new(MemStream {
            input: std::io::Cursor::new(Vec::new()),
            output: Vec::new(),
        });
        conn.rbuf.extend_from_slice(b"banana\n");
        assert!(matches!(conn.try_parse(), Err(FrameError::BadLength(_))));
    }
}
