//! # ic-serve — compilation as a service
//!
//! The ROADMAP's north star is a long-lived system serving heavy
//! traffic, and the paper's Fig. 1 centers on a persistent intelligent
//! optimization controller backed by a knowledge base — not a one-shot
//! CLI. Until now every `icc` invocation started cold and died with its
//! caches. This crate is the missing long-lived half: a daemon that
//! keeps the whole two-level evaluation engine (PR 1's whole-sequence
//! eval cache, PR 2's pass-prefix compilation cache) **warm and shared
//! across every client**, in the spirit of MLComp's and MCompiler's
//! persistent ML-guided frameworks.
//!
//! * [`proto`] — the length-prefixed newline-delimited JSON wire
//!   protocol: `compile` / `search` / `characterize` / `admin`
//!   requests, structured per-request stats in every response, and
//!   structured errors (busy-with-retry-after, deadline-exceeded) so
//!   overload degrades gracefully instead of hanging;
//! * [`engine`] — the warm core: one
//!   `CachedEvaluator<WorkloadEvaluator>` stack per workload+machine
//!   context fingerprint, shared by all connections, warmed from and
//!   persisted to the `ic-kb` store;
//! * [`server`] — listeners (Unix socket, optional TCP), a bounded
//!   submission queue in front of a worker pool (individual jobs still
//!   fan out over rayon inside the search strategies), per-request
//!   deadlines with mid-run cancellation, and graceful shutdown
//!   (SIGTERM / `admin shutdown` → stop accepting, drain in-flight,
//!   persist snapshots, exit 0);
//! * [`client`] — a blocking client; `icc --remote <sock>` routes the
//!   ordinary CLI surface through it, bit-identically to running
//!   locally.
//!
//! Determinism contract: for a fixed seed, a remote `search` returns
//! the same best sequence, cost, and trajectory as the same search
//! in-process — warm caches change how many raw simulations run, never
//! what the search observes.

//! Observability: every engine carries a per-pass profiler and cache
//! stats that roll up — with the daemon's admission counters and
//! latency histograms — into one [`ic_obs::Snapshot`], served by
//! `Admin(Metrics)` and periodically persisted to the kb store
//! (`ServeConfig::metrics_interval_ms`).

pub mod client;
pub mod engine;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use engine::{machine_by_name, Engine, EngineConfig, EngineConfigBuilder, EnginePool};
pub use proto::{
    AdminRequest, CompileRequest, ErrorKind, JobContext, Request, RequestStats, Response,
    SearchRequest, StatsResponse, PROTOCOL_VERSION,
};
pub use server::{ServeConfig, ServeConfigBuilder, Server, ServerHandle};
