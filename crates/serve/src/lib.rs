//! # ic-serve — compilation as a service
//!
//! The ROADMAP's north star is a long-lived system serving heavy
//! traffic, and the paper's Fig. 1 centers on a persistent intelligent
//! optimization controller backed by a knowledge base — not a one-shot
//! CLI. This crate is that long-lived half: a daemon that keeps the
//! whole two-level evaluation engine (PR 1's whole-sequence eval cache,
//! PR 2's pass-prefix compilation cache, PR 8's predict layer) **warm
//! and shared across every client**, in the spirit of MLComp's and
//! MCompiler's persistent ML-guided frameworks.
//!
//! The daemon is layered transport → router → shard:
//!
//! * [`proto`] — the versioned wire protocol: `compile` / `search` /
//!   `characterize` / `admin` requests, structured per-request stats,
//!   structured errors (busy-with-retry-after, deadline-exceeded), and
//!   the protocol-2 envelope (`{"v":2,"body":...}`) with its compat
//!   rule: unknown envelope fields are ignored, a bare frame is
//!   protocol 1, an out-of-range version is a stable
//!   `protocol_mismatch` error;
//! * [`transport`] — async framed connections (one task each) that
//!   batch pipelined frames into O(1) syscalls per burst;
//! * [`http`] — the HTTP/JSON gateway (`POST /v1/compile|search|
//!   characterize|admin`, `GET /v1/metrics`, `GET /v1/healthz`)
//!   answering byte-identically to the framed envelope form;
//! * [`router`] — decode → fingerprint → shard dispatch, the memoized
//!   fast path for warm repeats, admission control, the admin plane,
//!   and the unified [`ic_obs::Snapshot`];
//! * [`shard`] — N workload-affine shards, each owning its warm
//!   [`engine`] pool and a bounded job queue drained by dedicated OS
//!   worker threads; [`shard::shard_for`] keys a workload+machine
//!   fingerprint to its shard deterministically across restarts;
//! * [`engine`] — the warm core: one
//!   `CachedEvaluator<WorkloadEvaluator>` stack per workload+machine
//!   context fingerprint, warmed from and persisted to `ic-kb`;
//! * [`server`] — the assembly: listeners (Unix socket, optional TCP,
//!   optional HTTP) on an async accept/dispatch runtime, per-request
//!   deadlines with mid-run cancellation, graceful shutdown (SIGTERM /
//!   `admin shutdown` → stop accepting, drain, persist, exit 0);
//! * [`client`] — a blocking [`client::Transport`]-based client;
//!   `icc --remote unix://…|tcp://…|http://…` routes the ordinary CLI
//!   surface through it, bit-identically to running locally.
//!
//! Determinism contract: for a fixed seed, a remote `search` returns
//! the same best sequence, cost, and trajectory as the same search
//! in-process — warm caches change how many raw simulations run, never
//! what the search observes. The same holds across transports: the
//! framed and HTTP forms of a response are byte-identical envelopes.
//!
//! Observability: every engine carries a per-pass profiler and cache
//! stats that roll up — with the router's admission counters, latency
//! histograms, and per-shard queue/execution gauges — into one
//! [`ic_obs::Snapshot`], served by `Admin(Metrics)` / `GET /v1/metrics`
//! and periodically persisted to the kb store
//! (`ServeConfig::metrics_interval_ms`).

pub mod client;
pub mod engine;
pub mod http;
pub mod proto;
pub mod router;
pub mod server;
pub mod shard;
pub(crate) mod transport;

pub use client::{Client, ClientError, Transport};
pub use engine::{machine_by_name, Engine, EngineConfig, EngineConfigBuilder, EnginePool};
pub use proto::{
    AdminRequest, CompileRequest, ErrorKind, JobContext, Request, RequestStats, Response,
    SearchRequest, StatsResponse, PROTOCOL_VERSION,
};
pub use router::Router;
pub use server::{ServeConfig, ServeConfigBuilder, Server, ServerHandle};
pub use shard::shard_for;
