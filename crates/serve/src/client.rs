//! A blocking client for the `ic-serve` protocol, over any transport.
//!
//! One request, one response, in order — [`Client::request`] is the
//! whole API, with typed helpers on top. The connection target is a
//! URI: `unix:///path/to.sock`, `tcp://host:port` (both the framed
//! protocol), or `http://host:port` (the HTTP/JSON gateway). A bare
//! path connects over the Unix socket, so existing `--remote
//! /tmp/ic.sock` invocations keep working.
//!
//! Every transport answers with the *same* [`Response`] values — the
//! daemon's differential e2e test holds the framed and HTTP forms
//! byte-identical — so callers never branch on the scheme.
//!
//! ## Timeouts
//!
//! [`Client::set_timeout`] installs a **uniform per-request deadline**:
//! it is injected as `ctx.deadline_ms` into every data-plane request
//! that does not carry its own (so the server cancels overdue work and
//! counts it in `requests_cancelled`), and doubles as a socket read
//! timeout (with slack) so a hung server surfaces as
//! [`ClientError::Timeout`] instead of blocking forever — the deadline
//! gap the pre-shard client had.

use crate::proto::{
    decode_versioned, read_message_versioned, write_message_versioned, AdminRequest,
    CharacterizeRequest, CompileRequest, FrameError, JobContext, Request, Response, SearchRequest,
    StatsResponse,
};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// The URI did not parse or used an unsupported scheme.
    BadUri(String),
    Connect(std::io::Error),
    Frame(FrameError),
    /// The request outlived the client's timeout with no response.
    Timeout,
    /// The server closed the stream before answering.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::BadUri(m) => write!(f, "bad uri: {m}"),
            ClientError::Connect(e) => write!(f, "connect: {e}"),
            ClientError::Frame(e) => write!(f, "protocol: {e}"),
            ClientError::Timeout => write!(f, "timed out waiting for the server"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        // A read timeout on the socket surfaces as an IO frame error;
        // lift it to the first-class variant callers match on.
        if let FrameError::Io(io) = &e {
            if matches!(
                io.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                return ClientError::Timeout;
            }
        }
        ClientError::Frame(e)
    }
}

/// One wire protocol spoken from the client side. Implementations are
/// blocking; [`Client`] owns exactly one.
pub trait Transport: Send {
    /// Send one request and block for its response.
    fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError>;
    /// Bound how long a roundtrip may block on the socket.
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError>;
}

/// `try_clone` + read-timeout over both stream types, so one framed
/// transport serves Unix and TCP.
trait RawStream: Read + Write + Send + Sized {
    fn try_clone_raw(&self) -> std::io::Result<Self>;
    fn set_read_timeout_raw(&self, timeout: Option<Duration>) -> std::io::Result<()>;
}

impl RawStream for UnixStream {
    fn try_clone_raw(&self) -> std::io::Result<Self> {
        self.try_clone()
    }
    fn set_read_timeout_raw(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

impl RawStream for std::net::TcpStream {
    fn try_clone_raw(&self) -> std::io::Result<Self> {
        self.try_clone()
    }
    fn set_read_timeout_raw(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

/// The length-prefixed framed protocol (Unix socket or TCP). Writes
/// the protocol-2 envelope; accepts either response form.
struct FramedTransport<S: RawStream> {
    reader: BufReader<S>,
    writer: BufWriter<S>,
}

impl<S: RawStream> FramedTransport<S> {
    fn new(stream: S) -> Result<Self, ClientError> {
        let r = stream.try_clone_raw().map_err(ClientError::Connect)?;
        Ok(FramedTransport {
            reader: BufReader::new(r),
            writer: BufWriter::new(stream),
        })
    }
}

impl<S: RawStream> Transport for FramedTransport<S> {
    fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_message_versioned(&mut self.writer, request)?;
        read_message_versioned::<Response>(&mut self.reader)?
            .map(|vm| vm.msg)
            .ok_or(ClientError::Disconnected)
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader
            .get_ref()
            .set_read_timeout_raw(timeout)
            .map_err(ClientError::Connect)
    }
}

/// The HTTP/JSON gateway: one `POST` per request, keep-alive, response
/// body decoded from the protocol-2 envelope.
struct HttpTransport {
    reader: BufReader<std::net::TcpStream>,
    writer: std::net::TcpStream,
    /// Authority for the `Host` header.
    host: String,
}

impl HttpTransport {
    fn connect(authority: &str) -> Result<Self, ClientError> {
        let stream = std::net::TcpStream::connect(authority).map_err(ClientError::Connect)?;
        let _ = stream.set_nodelay(true);
        let r = stream.try_clone().map_err(ClientError::Connect)?;
        Ok(HttpTransport {
            reader: BufReader::new(r),
            writer: stream,
            host: authority.to_string(),
        })
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self
            .reader
            .read_line(&mut line)
            .map_err(|e| ClientError::from(FrameError::Io(e)))?
            == 0
        {
            return Err(ClientError::Disconnected);
        }
        Ok(line.trim_end().to_string())
    }
}

impl Transport for HttpTransport {
    fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let path = crate::http::path_for(request);
        let body = crate::http::body_for(request);
        let head = format!(
            "POST {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            self.host,
            body.len()
        );
        self.writer
            .write_all(head.as_bytes())
            .and_then(|()| self.writer.write_all(body.as_bytes()))
            .and_then(|()| self.writer.flush())
            .map_err(|e| ClientError::from(FrameError::Io(e)))?;

        // Status line (the decoded Response carries the error detail;
        // the code is redundant for this client) + headers.
        let status = self.read_line()?;
        if !status.starts_with("HTTP/1.") {
            return Err(ClientError::Frame(FrameError::BadPayload(format!(
                "not an HTTP response: {status}"
            ))));
        }
        let mut content_length = 0usize;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        ClientError::Frame(FrameError::BadPayload(
                            "unparseable Content-Length".into(),
                        ))
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader
            .read_exact(&mut body)
            .map_err(|e| ClientError::from(FrameError::Io(e)))?;
        let text = String::from_utf8(body)
            .map_err(|e| ClientError::Frame(FrameError::BadPayload(e.to_string())))?;
        Ok(decode_versioned::<Response>(&text)?.msg)
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader
            .get_ref()
            .set_read_timeout(timeout)
            .map_err(ClientError::Connect)
    }
}

/// A connection to a running `ic-serve` daemon, over any transport.
pub struct Client {
    transport: Box<dyn Transport>,
    timeout: Option<Duration>,
}

impl Client {
    /// Connect by URI: `unix://<path>`, `tcp://<host:port>`, or
    /// `http://<host:port>`. A bare path (no scheme) is a Unix socket
    /// path, for backward compatibility with pre-URI call sites.
    pub fn connect(uri: &str) -> Result<Client, ClientError> {
        if let Some(path) = uri.strip_prefix("unix://") {
            Self::unix(path)
        } else if let Some(addr) = uri.strip_prefix("tcp://") {
            Self::tcp(addr)
        } else if let Some(addr) = uri.strip_prefix("http://") {
            Ok(Client::over(Box::new(HttpTransport::connect(addr)?)))
        } else if let Some((scheme, _)) = uri.split_once("://") {
            Err(ClientError::BadUri(format!(
                "unsupported scheme `{scheme}` (unix|tcp|http)"
            )))
        } else {
            Self::unix(uri)
        }
    }

    /// Wrap an already-built transport (tests, custom transports).
    pub fn over(transport: Box<dyn Transport>) -> Client {
        Client {
            transport,
            timeout: None,
        }
    }

    fn unix(path: impl AsRef<Path>) -> Result<Client, ClientError> {
        let stream = UnixStream::connect(path.as_ref()).map_err(ClientError::Connect)?;
        Ok(Client::over(Box::new(FramedTransport::new(stream)?)))
    }

    fn tcp(addr: impl std::net::ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = std::net::TcpStream::connect(addr).map_err(ClientError::Connect)?;
        let _ = stream.set_nodelay(true);
        Ok(Client::over(Box::new(FramedTransport::new(stream)?)))
    }

    /// Connect over the daemon's Unix socket.
    #[deprecated(note = "use `Client::connect(\"unix://<path>\")` (a bare path also works)")]
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<Client, ClientError> {
        Self::unix(path)
    }

    /// Connect over TCP (`host:port`).
    #[deprecated(note = "use `Client::connect(\"tcp://<host:port>\")`")]
    pub fn connect_tcp(addr: impl std::net::ToSocketAddrs) -> Result<Client, ClientError> {
        Self::tcp(addr)
    }

    /// Install a uniform per-request timeout: injected as
    /// `ctx.deadline_ms` into data-plane requests that carry none, and
    /// enforced on the socket (with slack for queueing) so a dead
    /// server yields [`ClientError::Timeout`]. `None` removes both.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        // Slack over the server-side deadline: a deadline-exceeded
        // response is strictly better than a torn-off read.
        let socket = timeout.map(|t| t + Duration::from_millis(500));
        self.transport.set_read_timeout(socket)?;
        self.timeout = timeout;
        Ok(())
    }

    /// The currently installed per-request timeout.
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// Send one request and block for its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.timeout {
            Some(t) => {
                let ms = (t.as_millis() as u64).max(1);
                let mut req = request.clone();
                if let Some(ctx) = request_ctx_mut(&mut req) {
                    if ctx.deadline_ms == 0 {
                        ctx.deadline_ms = ms;
                    }
                }
                self.transport.roundtrip(&req)
            }
            None => self.transport.roundtrip(request),
        }
    }

    /// Compile `ctx` with `sequence` (optimization names).
    pub fn compile(
        &mut self,
        ctx: JobContext,
        sequence: Vec<String>,
        emit_ir: bool,
    ) -> Result<Response, ClientError> {
        self.request(&Request::Compile(CompileRequest {
            ctx,
            sequence,
            emit_ir,
        }))
    }

    /// Run a budgeted search on the daemon.
    pub fn search(
        &mut self,
        ctx: JobContext,
        strategy: &str,
        budget: usize,
        seed: u64,
    ) -> Result<Response, ClientError> {
        self.request(&Request::Search(SearchRequest {
            ctx,
            strategy: strategy.into(),
            budget,
            seed,
        }))
    }

    /// Fetch the -O0 counter vector for `ctx`.
    pub fn characterize(&mut self, ctx: JobContext) -> Result<Response, ClientError> {
        self.request(&Request::Characterize(CharacterizeRequest { ctx }))
    }

    /// Aggregated server statistics.
    pub fn stats(&mut self) -> Result<StatsResponse, ClientError> {
        match self.request(&Request::Admin(AdminRequest::Stats))? {
            Response::Stats(s) => Ok(s),
            other => Err(ClientError::Frame(FrameError::BadPayload(format!(
                "expected Stats, got {other:?}"
            )))),
        }
    }

    /// The daemon's unified observability snapshot (`Admin(Metrics)`)
    /// — the same [`ic_obs::Snapshot`] schema `icc --metrics-json`
    /// prints locally.
    pub fn metrics(&mut self) -> Result<ic_obs::Snapshot, ClientError> {
        match self.request(&Request::Admin(AdminRequest::Metrics))? {
            Response::Metrics(s) => Ok(*s),
            other => Err(ClientError::Frame(FrameError::BadPayload(format!(
                "expected Metrics, got {other:?}"
            )))),
        }
    }

    /// Ask the daemon to persist its cache snapshots now.
    pub fn flush(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::Admin(AdminRequest::Flush))
    }

    /// Ask the daemon to flush, then compact its knowledge base down to
    /// `max_entries_per_context` lowest-cost entries per context.
    pub fn compact(&mut self, max_entries_per_context: usize) -> Result<Response, ClientError> {
        self.request(&Request::Admin(AdminRequest::Compact {
            max_entries_per_context,
        }))
    }

    /// Ask the daemon to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::Admin(AdminRequest::Shutdown))
    }
}

fn request_ctx_mut(request: &mut Request) -> Option<&mut JobContext> {
    match request {
        Request::Compile(r) => Some(&mut r.ctx),
        Request::Search(r) => Some(&mut r.ctx),
        Request::Characterize(r) => Some(&mut r.ctx),
        Request::Admin(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsupported_scheme_is_a_bad_uri() {
        match Client::connect("ftp://host:1") {
            Err(ClientError::BadUri(m)) => assert!(m.contains("ftp")),
            other => panic!("expected BadUri, got {:?}", other.err()),
        }
    }

    #[test]
    fn bare_path_routes_to_unix() {
        // No daemon there: the error must be Connect (i.e. the path was
        // treated as a Unix socket), not BadUri.
        match Client::connect("/nonexistent/ic-serve.sock") {
            Err(ClientError::Connect(_)) => {}
            other => panic!("expected Connect error, got {:?}", other.err()),
        }
        match Client::connect("unix:///nonexistent/ic-serve.sock") {
            Err(ClientError::Connect(_)) => {}
            other => panic!("expected Connect error, got {:?}", other.err()),
        }
    }

    #[test]
    fn timeout_io_errors_become_first_class() {
        let e = ClientError::from(FrameError::Io(std::io::Error::from(
            std::io::ErrorKind::WouldBlock,
        )));
        assert!(matches!(e, ClientError::Timeout));
        let e = ClientError::from(FrameError::Io(std::io::Error::from(
            std::io::ErrorKind::TimedOut,
        )));
        assert!(matches!(e, ClientError::Timeout));
        let e = ClientError::from(FrameError::Truncated);
        assert!(matches!(e, ClientError::Frame(FrameError::Truncated)));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_still_compile_and_connect_the_old_way() {
        // The PR-3 surface stays source-compatible: same names, same
        // signatures, same error behavior — just deprecated.
        match Client::connect_unix("/nonexistent/ic-serve.sock") {
            Err(ClientError::Connect(_)) => {}
            other => panic!("expected Connect error, got {:?}", other.err()),
        }
        match Client::connect_tcp("127.0.0.1:1") {
            Err(ClientError::Connect(_)) => {}
            Ok(_) => {} // something actually listening on :1 — fine
            other => panic!("expected Connect error, got {:?}", other.err()),
        }
    }
}
