//! A blocking client for the `ic-serve` protocol.
//!
//! One request, one response, in order — [`Client::request`] is the
//! whole API, with typed helpers on top. Connects over the daemon's
//! Unix socket or TCP.

use crate::proto::{
    read_message, write_message, AdminRequest, CharacterizeRequest, CompileRequest, FrameError,
    JobContext, Request, Response, SearchRequest, StatsResponse,
};
use std::io::{BufReader, BufWriter, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    Connect(std::io::Error),
    Frame(FrameError),
    /// The server closed the stream before answering.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect: {e}"),
            ClientError::Frame(e) => write!(f, "protocol: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

enum Stream {
    Unix(BufReader<UnixStream>, BufWriter<UnixStream>),
    Tcp(
        BufReader<std::net::TcpStream>,
        BufWriter<std::net::TcpStream>,
    ),
}

/// A connection to a running `ic-serve` daemon.
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connect over the daemon's Unix socket.
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<Client, ClientError> {
        let w = UnixStream::connect(path.as_ref()).map_err(ClientError::Connect)?;
        let r = w.try_clone().map_err(ClientError::Connect)?;
        Ok(Client {
            stream: Stream::Unix(BufReader::new(r), BufWriter::new(w)),
        })
    }

    /// Connect over TCP (`host:port`).
    pub fn connect_tcp(addr: impl std::net::ToSocketAddrs) -> Result<Client, ClientError> {
        let w = std::net::TcpStream::connect(addr).map_err(ClientError::Connect)?;
        let r = w.try_clone().map_err(ClientError::Connect)?;
        Ok(Client {
            stream: Stream::Tcp(BufReader::new(r), BufWriter::new(w)),
        })
    }

    /// Send one request and block for its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        fn round_trip<R: Read, W: Write>(
            reader: &mut BufReader<R>,
            writer: &mut BufWriter<W>,
            request: &Request,
        ) -> Result<Response, ClientError> {
            write_message(writer, request)?;
            read_message::<Response>(reader)?.ok_or(ClientError::Disconnected)
        }
        match &mut self.stream {
            Stream::Unix(r, w) => round_trip(r, w, request),
            Stream::Tcp(r, w) => round_trip(r, w, request),
        }
    }

    /// Compile `ctx` with `sequence` (optimization names).
    pub fn compile(
        &mut self,
        ctx: JobContext,
        sequence: Vec<String>,
        emit_ir: bool,
    ) -> Result<Response, ClientError> {
        self.request(&Request::Compile(CompileRequest {
            ctx,
            sequence,
            emit_ir,
        }))
    }

    /// Run a budgeted search on the daemon.
    pub fn search(
        &mut self,
        ctx: JobContext,
        strategy: &str,
        budget: usize,
        seed: u64,
    ) -> Result<Response, ClientError> {
        self.request(&Request::Search(SearchRequest {
            ctx,
            strategy: strategy.into(),
            budget,
            seed,
        }))
    }

    /// Fetch the -O0 counter vector for `ctx`.
    pub fn characterize(&mut self, ctx: JobContext) -> Result<Response, ClientError> {
        self.request(&Request::Characterize(CharacterizeRequest { ctx }))
    }

    /// Aggregated server statistics.
    pub fn stats(&mut self) -> Result<StatsResponse, ClientError> {
        match self.request(&Request::Admin(AdminRequest::Stats))? {
            Response::Stats(s) => Ok(s),
            other => Err(ClientError::Frame(FrameError::BadPayload(format!(
                "expected Stats, got {other:?}"
            )))),
        }
    }

    /// The daemon's unified observability snapshot (`Admin(Metrics)`)
    /// — the same [`ic_obs::Snapshot`] schema `icc --metrics-json`
    /// prints locally.
    pub fn metrics(&mut self) -> Result<ic_obs::Snapshot, ClientError> {
        match self.request(&Request::Admin(AdminRequest::Metrics))? {
            Response::Metrics(s) => Ok(*s),
            other => Err(ClientError::Frame(FrameError::BadPayload(format!(
                "expected Metrics, got {other:?}"
            )))),
        }
    }

    /// Ask the daemon to persist its cache snapshots now.
    pub fn flush(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::Admin(AdminRequest::Flush))
    }

    /// Ask the daemon to flush, then compact its knowledge base down to
    /// `max_entries_per_context` lowest-cost entries per context.
    pub fn compact(&mut self, max_entries_per_context: usize) -> Result<Response, ClientError> {
        self.request(&Request::Admin(AdminRequest::Compact {
            max_entries_per_context,
        }))
    }

    /// Ask the daemon to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::Admin(AdminRequest::Shutdown))
    }
}
