//! The router: one per daemon, shared by every transport.
//!
//! A request's life: the transport decodes it, [`Router::route`] maps
//! its context fingerprint to a shard ([`crate::shard::shard_for`]),
//! probes that shard's response memo (a warm repeat answers without
//! ever touching the queue), and otherwise submits the job to the
//! shard's bounded queue and awaits the reply. Admin requests are
//! answered inline — the admin plane must work even when every data
//! plane queue is jammed.
//!
//! The router owns everything genuinely global: the knowledge base,
//! the aggregate request counters, the observability registry, and the
//! drain flag. Shards own everything per-context: engines, queues,
//! workers.

use crate::engine::{
    fingerprint_for, memoized_form, run_characterize, run_compile, run_search, EnginePool, MemoKey,
};
use crate::proto::{
    AdminRequest, AdminResponse, ErrorKind, ErrorResponse, JobContext, Request, Response,
    StatsResponse, PROTOCOL_VERSION,
};
use crate::server::ServeConfig;
use crate::shard::{shard_for, Job, PushError, Shard};
use ic_kb::{KnowledgeBase, MetricsRecord};
use ic_obs::{Registry, ServiceStats, Snapshot};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Monotonic aggregate counters for `Admin(Stats)` / `Admin(Metrics)`.
#[derive(Default)]
pub(crate) struct Agg {
    compile_requests: AtomicU64,
    search_requests: AtomicU64,
    characterize_requests: AtomicU64,
    busy_rejections: AtomicU64,
    /// Requests refused because the server was draining for shutdown.
    /// Counted separately from `busy_rejections` (the legacy stats
    /// surface documents that field as queue-full only); the unified
    /// snapshot reports the sum as `requests_rejected`.
    drain_rejections: AtomicU64,
    deadline_cancellations: AtomicU64,
    pub(crate) bad_requests: AtomicU64,
    /// EWMA of service time in microseconds (backoff hint input).
    service_ewma_us: AtomicU64,
}

impl Agg {
    fn observe_service(&self, elapsed: Duration) {
        let us = elapsed.as_micros() as u64;
        let old = self.service_ewma_us.load(Ordering::Relaxed);
        let new = if old == 0 { us } else { (old * 7 + us) / 8 };
        self.service_ewma_us.store(new, Ordering::Relaxed);
    }

    /// Backoff hint for `Busy` rejections: roughly the time for the hot
    /// shard's queue to drain at recent service rates, floored at 50ms.
    fn retry_after_ms(&self, queue_depth: usize, workers: usize) -> u64 {
        let per_job_ms = self.service_ewma_us.load(Ordering::Relaxed) / 1000;
        (per_job_ms * queue_depth as u64 / workers.max(1) as u64).max(50)
    }
}

/// Shared state of a running server — see the module docs for the
/// division of labor between router and shards.
pub struct Router {
    pub(crate) config: ServeConfig,
    pub(crate) shards: Vec<Arc<Shard>>,
    pub(crate) agg: Agg,
    /// Daemon-level instruments (queue/service latency histograms,
    /// per-shard depth gauges); engines carry their own slices.
    pub(crate) obs: Registry,
    pub(crate) kb: Mutex<KnowledgeBase>,
    /// True once shutdown begins: listeners stop accepting, queues
    /// reject new jobs, workers exit when drained.
    draining: AtomicBool,
    /// Open client connections (any transport) — drained with a grace
    /// period on shutdown so final responses reach their clients.
    pub(crate) connections: AtomicU64,
    started: Instant,
}

impl Router {
    pub(crate) fn new(config: ServeConfig, kb: KnowledgeBase) -> Arc<Router> {
        let shards = (0..config.shards.max(1))
            .map(|i| {
                Arc::new(Shard::new(
                    i,
                    EnginePool::with_config(config.engine_config()),
                    config.queue_capacity,
                ))
            })
            .collect();
        Arc::new(Router {
            config,
            shards,
            agg: Agg::default(),
            obs: Registry::new(),
            kb: Mutex::new(kb),
            draining: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            started: Instant::now(),
        })
    }

    /// Spawn every shard's worker threads. OS threads, not async tasks:
    /// jobs are CPU-bound (simulation, search) and may fan out over
    /// rayon internally — they must never stall the reactor.
    pub(crate) fn spawn_workers(self: &Arc<Self>) -> Vec<std::thread::JoinHandle<()>> {
        let mut handles = Vec::new();
        for shard in &self.shards {
            for _ in 0..self.config.workers.max(1) {
                let router = self.clone();
                let shard = shard.clone();
                handles.push(std::thread::spawn(move || {
                    while let Some(job) = shard.pop(&router.draining) {
                        router.execute(&shard, job);
                    }
                }));
            }
        }
        handles
    }

    /// Begin graceful shutdown (idempotent).
    pub fn begin_shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
        for shard in &self.shards {
            shard.notify_all();
        }
    }

    /// True once shutdown has begun.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Route one decoded request from a connection task. Fast path
    /// first: a repeat of a memoized request on a warm shard is
    /// answered here, on the connection task, without queue or worker.
    pub async fn route(&self, request: Request) -> Response {
        if let Request::Admin(req) = &request {
            return self.admin(req);
        }
        if self.is_draining() {
            self.agg.drain_rejections.fetch_add(1, Ordering::Relaxed);
            return Response::Error(ErrorResponse::new(
                ErrorKind::ShuttingDown,
                "server is draining for shutdown",
            ));
        }
        let now = Instant::now();
        let ctx = match request_ctx(&request) {
            Some(ctx) => ctx,
            None => return ErrorResponse::bad_request("admin requests are not routable"),
        };
        let fingerprint = match fingerprint_for(ctx) {
            Ok(fp) => fp,
            Err(e) => return self.error_response(e),
        };
        let shard = &self.shards[shard_for(&fingerprint, self.shards.len())];

        // Fast path: the shard has a warm engine and has answered this
        // exact request before — reply from the memo, zero queueing.
        if let Some(engine) = shard.engines.get(&fingerprint) {
            if let Some(key) = MemoKey::for_request(&request, engine.predict.is_some()) {
                if let Some(response) = engine.memo.get(&key) {
                    shard.fast_path_hits.fetch_add(1, Ordering::Relaxed);
                    self.count_request(&request);
                    self.obs
                        .histogram("serve.service_us")
                        .record(now.elapsed().as_micros() as u64);
                    return response;
                }
            }
        }

        let deadline = self.effective_deadline(ctx, now);
        let (tx, rx) = tokio::sync::oneshot::channel();
        let job = Job {
            request,
            enqueued: now,
            deadline,
            reply: tx,
        };
        match shard.push(job, self.is_draining()) {
            Ok(()) => match rx.await {
                Ok(resp) => resp,
                Err(_) => {
                    self.agg.drain_rejections.fetch_add(1, Ordering::Relaxed);
                    Response::Error(ErrorResponse::new(
                        ErrorKind::ShuttingDown,
                        "server shut down before the job ran",
                    ))
                }
            },
            Err(PushError::Full) => {
                self.agg.busy_rejections.fetch_add(1, Ordering::Relaxed);
                Response::Error(
                    ErrorResponse::new(
                        ErrorKind::Busy,
                        format!(
                            "shard {} queue full ({} jobs)",
                            shard.index,
                            shard.capacity()
                        ),
                    )
                    .with_retry_after(self.agg.retry_after_ms(shard.depth(), self.config.workers)),
                )
            }
            Err(PushError::ShuttingDown) => {
                self.agg.drain_rejections.fetch_add(1, Ordering::Relaxed);
                Response::Error(ErrorResponse::new(
                    ErrorKind::ShuttingDown,
                    "server is draining for shutdown",
                ))
            }
        }
    }

    fn count_request(&self, request: &Request) {
        match request {
            Request::Compile(_) => self.agg.compile_requests.fetch_add(1, Ordering::Relaxed),
            Request::Search(_) => self.agg.search_requests.fetch_add(1, Ordering::Relaxed),
            Request::Characterize(_) => self
                .agg
                .characterize_requests
                .fetch_add(1, Ordering::Relaxed),
            Request::Admin(_) => 0,
        };
    }

    fn effective_deadline(&self, ctx: &JobContext, now: Instant) -> Option<Instant> {
        let ms = if ctx.deadline_ms != 0 {
            ctx.deadline_ms
        } else {
            self.config.default_deadline_ms
        };
        (ms != 0).then(|| now + Duration::from_millis(ms))
    }

    /// Execute one data-plane job (already popped by a shard worker).
    fn execute(&self, shard: &Shard, job: Job) {
        let queue_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
        self.obs
            .histogram("serve.queue_us")
            .record(job.enqueued.elapsed().as_micros() as u64);
        // Cancelled while queued?
        if let Some(d) = job.deadline {
            if Instant::now() > d {
                self.agg
                    .deadline_cancellations
                    .fetch_add(1, Ordering::Relaxed);
                shard.cancelled.fetch_add(1, Ordering::Relaxed);
                let _ = job.reply.send(Response::Error(ErrorResponse::new(
                    ErrorKind::DeadlineExceeded,
                    format!("deadline elapsed after {queue_ms:.0}ms in queue"),
                )));
                return;
            }
        }
        let t0 = Instant::now();
        let response = match &job.request {
            Request::Compile(req) => match shard.engines.get_or_create(&req.ctx, &self.kb) {
                Ok(engine) => match run_compile(&engine, req, queue_ms) {
                    Ok(r) => {
                        self.agg.compile_requests.fetch_add(1, Ordering::Relaxed);
                        self.memoize(&engine, &job.request, Response::Compile(r))
                    }
                    Err(e) => self.cancel_counted(shard, e),
                },
                Err(e) => self.cancel_counted(shard, e),
            },
            Request::Search(req) => match shard.engines.get_or_create(&req.ctx, &self.kb) {
                Ok(engine) => match run_search(&engine, req, job.deadline, queue_ms) {
                    Ok(r) => {
                        self.agg.search_requests.fetch_add(1, Ordering::Relaxed);
                        self.memoize(&engine, &job.request, Response::Search(r))
                    }
                    Err(e) => self.cancel_counted(shard, e),
                },
                Err(e) => self.cancel_counted(shard, e),
            },
            Request::Characterize(req) => match shard.engines.get_or_create(&req.ctx, &self.kb) {
                Ok(engine) => match run_characterize(&engine, queue_ms) {
                    Ok(r) => {
                        self.agg
                            .characterize_requests
                            .fetch_add(1, Ordering::Relaxed);
                        self.memoize(&engine, &job.request, Response::Characterize(r))
                    }
                    Err(e) => self.cancel_counted(shard, e),
                },
                Err(e) => self.cancel_counted(shard, e),
            },
            // Admin requests never enter a queue.
            Request::Admin(_) => ErrorResponse::bad_request("admin requests are not queueable"),
        };
        shard.executed.fetch_add(1, Ordering::Relaxed);
        self.agg.observe_service(t0.elapsed());
        self.obs
            .histogram("serve.service_us")
            .record(t0.elapsed().as_micros() as u64);
        // A disconnected client is not an error — the work (and the
        // warm cache it produced) is still valuable.
        let _ = job.reply.send(response);
    }

    /// Record a successful response in the engine's memo (in its
    /// deterministic warm form) so repeats take the fast path.
    fn memoize(
        &self,
        engine: &crate::engine::Engine,
        request: &Request,
        response: Response,
    ) -> Response {
        if let Some(key) = MemoKey::for_request(request, engine.predict.is_some()) {
            engine.memo.put(key, memoized_form(&response));
        }
        response
    }

    fn cancel_counted(&self, shard: &Shard, e: ErrorResponse) -> Response {
        if e.kind == ErrorKind::DeadlineExceeded {
            shard.cancelled.fetch_add(1, Ordering::Relaxed);
        }
        self.error_response(e)
    }

    pub(crate) fn error_response(&self, e: ErrorResponse) -> Response {
        match e.kind {
            ErrorKind::DeadlineExceeded => {
                self.agg
                    .deadline_cancellations
                    .fetch_add(1, Ordering::Relaxed);
            }
            ErrorKind::BadRequest => {
                self.agg.bad_requests.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        Response::Error(e)
    }

    /// Every resident engine across all shards.
    fn all_engines(&self) -> Vec<Arc<crate::engine::Engine>> {
        self.shards
            .iter()
            .flat_map(|s| s.engines.engines())
            .collect()
    }

    fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.depth()).sum()
    }

    fn engine_count(&self) -> usize {
        self.shards.iter().map(|s| s.engines.len()).sum()
    }

    /// Persist every engine's eval-cache snapshot and the current
    /// observability snapshots into the knowledge base and save it to
    /// the configured store. Returns entries persisted (0 with no store
    /// configured — snapshots still merge into the in-memory KB so a
    /// later flush with a store catches up).
    pub fn flush(&self) -> u64 {
        let total: u64 = self
            .shards
            .iter()
            .map(|s| s.engines.flush_to_kb(&self.kb))
            .sum();
        self.maybe_retrain();
        self.persist_metrics();
        if let Some(path) = &self.config.kb_path {
            if let Err(e) = self.kb.lock().save(path) {
                eprintln!("ic-serve: persisting {}: {e}", path.display());
                return 0;
            }
        }
        total
    }

    /// Online model refresh: after write-through, give every predicting
    /// engine a chance to retrain on the knowledge base it just fed.
    fn maybe_retrain(&self) {
        if !self.config.predict {
            return;
        }
        let unix_ms = unix_ms_now();
        let mut kb = self.kb.lock();
        for e in self.all_engines() {
            if e.maybe_retrain(&mut kb, unix_ms) {
                eprintln!(
                    "ic-serve: retrained cost model v{} for {}",
                    e.predict.as_ref().map_or(0, |p| p.model_version()),
                    e.fingerprint
                );
            }
        }
    }

    /// Upsert the daemon-wide and per-engine observability snapshots
    /// into the in-memory knowledge base (written out by [`Self::flush`]
    /// and the periodic metrics task).
    fn persist_metrics(&self) {
        let unix_ms = unix_ms_now();
        let aggregate = self.metrics_snapshot();
        let mut kb = self.kb.lock();
        for e in self.all_engines() {
            kb.upsert_metrics(MetricsRecord {
                context: e.fingerprint.clone(),
                unix_ms,
                snapshot: e.metrics_snapshot(),
            });
        }
        kb.upsert_metrics(MetricsRecord {
            context: aggregate.context.clone(),
            unix_ms,
            snapshot: aggregate,
        });
    }

    /// The unified observability snapshot: daemon request accounting,
    /// per-shard queue/execution stats, every engine's cache stats and
    /// per-pass profiling rows, and the registry's instruments — the
    /// exact [`Snapshot`] schema that `icc --metrics-json` prints.
    pub fn metrics_snapshot(&self) -> Snapshot {
        // Refresh the per-shard depth gauges first so they land in the
        // registry dump alongside the histograms.
        for s in &self.shards {
            self.obs
                .gauge(&format!("serve.shard{}.queue_depth", s.index))
                .set(s.depth() as f64);
        }
        let mut snap = Snapshot::for_context("ic-serve");
        self.obs.snapshot_into(&mut snap);
        snap.service = ServiceStats {
            compile_requests: self.agg.compile_requests.load(Ordering::Relaxed),
            search_requests: self.agg.search_requests.load(Ordering::Relaxed),
            characterize_requests: self.agg.characterize_requests.load(Ordering::Relaxed),
            requests_rejected: self
                .agg
                .busy_rejections
                .load(Ordering::Relaxed)
                .saturating_add(self.agg.drain_rejections.load(Ordering::Relaxed)),
            requests_cancelled: self.agg.deadline_cancellations.load(Ordering::Relaxed),
            bad_requests: self.agg.bad_requests.load(Ordering::Relaxed),
            queue_depth: self.queue_depth() as u64,
            engines: self.engine_count() as u64,
            uptime_ms: self.started.elapsed().as_millis() as u64,
        };
        snap.shards = self.shards.iter().map(|s| s.stats()).collect();
        for e in self.all_engines() {
            snap.merge(&e.metrics_snapshot());
        }
        snap
    }

    pub(crate) fn stats(&self) -> StatsResponse {
        let mut s = StatsResponse {
            protocol_version: PROTOCOL_VERSION,
            compile_requests: self.agg.compile_requests.load(Ordering::Relaxed),
            search_requests: self.agg.search_requests.load(Ordering::Relaxed),
            characterize_requests: self.agg.characterize_requests.load(Ordering::Relaxed),
            busy_rejections: self.agg.busy_rejections.load(Ordering::Relaxed),
            deadline_cancellations: self.agg.deadline_cancellations.load(Ordering::Relaxed),
            bad_requests: self.agg.bad_requests.load(Ordering::Relaxed),
            queue_depth: self.queue_depth(),
            engines: self.engine_count(),
            uptime_ms: self.started.elapsed().as_secs_f64() * 1e3,
            ..Default::default()
        };
        for e in self.all_engines() {
            let ev = e.eval.stats();
            let cv = e.eval.inner().compile_stats();
            s.eval_hits += ev.hits;
            s.eval_misses += ev.misses;
            s.eval_entries += ev.entries as u64;
            s.compile_hits += cv.hits;
            s.compile_misses += cv.misses;
        }
        s
    }

    /// Answer an admin request inline.
    fn admin(&self, req: &AdminRequest) -> Response {
        match req {
            AdminRequest::Stats => Response::Stats(self.stats()),
            AdminRequest::Metrics => Response::Metrics(Box::new(self.metrics_snapshot())),
            AdminRequest::Flush => Response::Admin(AdminResponse {
                action: "flush".into(),
                persisted_entries: self.flush(),
                dropped_entries: 0,
            }),
            AdminRequest::Compact {
                max_entries_per_context,
            } => {
                if *max_entries_per_context == 0 {
                    return self.error_response(ErrorResponse::new(
                        ErrorKind::BadRequest,
                        "max_entries_per_context must be >= 1",
                    ));
                }
                // Write through first so compaction ranks the freshest
                // entries, then trim and persist the trimmed store.
                let persisted: u64 = self
                    .shards
                    .iter()
                    .map(|s| s.engines.flush_to_kb(&self.kb))
                    .sum();
                let report = self.kb.lock().compact(*max_entries_per_context);
                self.persist_metrics();
                if let Some(path) = &self.config.kb_path {
                    if let Err(e) = self.kb.lock().save(path) {
                        eprintln!("ic-serve: persisting {}: {e}", path.display());
                    }
                }
                Response::Admin(AdminResponse {
                    action: "compact".into(),
                    persisted_entries: persisted,
                    dropped_entries: report.eval_entries_dropped,
                })
            }
            AdminRequest::Shutdown => {
                let persisted = self.flush();
                self.begin_shutdown();
                Response::Admin(AdminResponse {
                    action: "shutdown".into(),
                    persisted_entries: persisted,
                    dropped_entries: 0,
                })
            }
        }
    }
}

fn request_ctx(request: &Request) -> Option<&JobContext> {
    match request {
        Request::Compile(r) => Some(&r.ctx),
        Request::Search(r) => Some(&r.ctx),
        Request::Characterize(r) => Some(&r.ctx),
        Request::Admin(_) => None,
    }
}

fn unix_ms_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}
