//! End-to-end tests for the `ic-serve` daemon: an in-process server on
//! a real Unix socket, real clients, and the ISSUE's acceptance
//! criteria — bit-identical remote results, a ≥5x warm-cache
//! simulation reduction, structured overload/deadline errors, and
//! shutdown that drains and persists.

use ic_core::controller::WorkloadEvaluator;
use ic_kb::KnowledgeBase;
use ic_search::{random, CachedEvaluator, SequenceSpace};
use ic_serve::proto::{ErrorKind, Request, Response, SearchRequest};
use ic_serve::{Client, JobContext, ServeConfig, Server, ServerHandle};
use ic_workloads::{Kind, Workload};
use std::path::PathBuf;

/// The README's array-walking MinC program — enough structure for the
/// optimizer to bite on.
const SOURCE: &str = "\
int a[64];
int main() {
    int s = 0;
    for (int i = 0; i < 64; i = i + 1) a[i] = i * 3 + 1;
    for (int i = 0; i < 64; i = i + 1) s = s + a[i] * a[i];
    return s;
}
";
const FUEL: u64 = 100_000_000;
const BUDGET: usize = 40;
const SEED: u64 = 7;

fn ctx() -> JobContext {
    JobContext {
        name: "hot".into(),
        source: SOURCE.into(),
        machine: "vliw".into(),
        fuel: FUEL,
        deadline_ms: 0,
    }
}

/// Per-test unique paths: tests run in parallel in one process.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ic-serve-test-{}-{tag}", std::process::id()))
}

fn start(tag: &str, mutate: impl FnOnce(&mut ServeConfig)) -> ServerHandle {
    let mut cfg = ServeConfig {
        socket: scratch(&format!("{tag}.sock")),
        workers: 2,
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    mutate(&mut cfg);
    Server::spawn(cfg, None).expect("server spawns")
}

fn connect(handle: &ServerHandle) -> Client {
    // The socket exists before spawn returns; connect can still lose a
    // race with the accept thread only on a loaded machine, so retry.
    for _ in 0..50 {
        if let Ok(c) = Client::connect(&format!("unix://{}", handle.socket().display())) {
            return c;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("could not connect to {}", handle.socket().display());
}

fn search_ok(client: &mut Client) -> ic_serve::proto::SearchResponse {
    match client
        .search(ctx(), "random", BUDGET, SEED)
        .expect("search")
    {
        Response::Search(s) => s,
        other => panic!("expected Search response, got {other:?}"),
    }
}

/// The same search, run locally — the determinism reference.
fn local_reference() -> (Vec<String>, f64, Vec<f64>) {
    let w = Workload {
        name: "hot".into(),
        kind: Kind::AluBound,
        source: SOURCE.into(),
        fuel: FUEL,
        meta: None,
    };
    let config = ic_machine::MachineConfig::vliw_c6713_like();
    let space = SequenceSpace::paper();
    let eval = CachedEvaluator::new(space.clone(), WorkloadEvaluator::new(&w, &config));
    let r = random::run(&space, &eval, BUDGET, SEED);
    let names = r.best_seq.iter().map(|o| o.name().to_string()).collect();
    (names, r.best_cost, r.best_so_far)
}

#[test]
fn remote_search_is_bit_identical_and_warm_reruns_skip_simulation() {
    let handle = start("warm", |_| {});
    let (ref_seq, ref_cost, ref_traj) = local_reference();

    // Cold: every evaluation is a raw simulation.
    let cold = search_ok(&mut connect(&handle));
    assert_eq!(cold.best_sequence, ref_seq, "remote best != local best");
    assert_eq!(
        cold.best_cost.to_bits(),
        ref_cost.to_bits(),
        "remote cost != local cost"
    );
    assert_eq!(cold.best_so_far, ref_traj, "trajectory diverged");
    assert!(cold.stats.eval_misses > 0, "cold run must simulate");

    // Warm, from a different client connection: identical answer, ≥5x
    // fewer raw simulations (the ISSUE's acceptance bar).
    let warm = search_ok(&mut connect(&handle));
    assert_eq!(warm.best_sequence, ref_seq);
    assert_eq!(warm.best_cost.to_bits(), ref_cost.to_bits());
    assert_eq!(warm.best_so_far, ref_traj);
    assert!(
        warm.stats.eval_misses * 5 <= cold.stats.eval_misses,
        "warm run simulated {} times, cold {} — less than a 5x reduction",
        warm.stats.eval_misses,
        cold.stats.eval_misses
    );
    assert!(warm.stats.eval_hit_rate() > 0.0, "warm run must hit");

    // Two *concurrent* clients against the warm pool: both identical,
    // both served from cache.
    let socket = handle.socket().to_path_buf();
    let threads: Vec<_> = (0..2)
        .map(|_| {
            let sock = socket.clone();
            std::thread::spawn(move || {
                let mut c =
                    Client::connect(&format!("unix://{}", sock.display())).expect("connect");
                match c.search(ctx(), "random", BUDGET, SEED).expect("search") {
                    Response::Search(s) => s,
                    other => panic!("expected Search, got {other:?}"),
                }
            })
        })
        .collect();
    for t in threads {
        let s = t.join().expect("client thread");
        assert_eq!(s.best_sequence, ref_seq);
        assert_eq!(s.best_so_far, ref_traj);
        assert!(s.stats.eval_hit_rate() > 0.0, "concurrent client missed");
    }

    // The three warm repeats never reached an engine at all: the
    // router's response memo answered them, which the per-shard
    // fast-path counter records. Only the cold run simulated.
    let snap = handle.state().metrics_snapshot();
    let fast_hits: u64 = snap.shards.iter().map(|s| s.fast_path_hits).sum();
    assert!(
        fast_hits >= 3,
        "expected >=3 memo fast-path hits for the warm reruns, saw {fast_hits}"
    );

    handle.shutdown();
    let stats = handle.join();
    assert_eq!(stats.search_requests, 4);
    assert!(stats.eval_misses > 0, "cold run must have simulated");
}

#[test]
fn full_queue_rejects_with_structured_retry_after() {
    // One worker, one queue slot: the third in-flight job must bounce.
    let handle = start("busy", |c| {
        c.workers = 1;
        c.queue_capacity = 1;
    });

    // Jam the worker. The long search self-bounds via its deadline, so
    // the test can't hang even if the assertions below are slow.
    let socket = handle.socket().to_path_buf();
    let jam = std::thread::spawn({
        let sock = socket.clone();
        move || {
            let mut c = Client::connect(&format!("unix://{}", sock.display())).expect("connect");
            let mut jam_ctx = ctx();
            jam_ctx.deadline_ms = 3_000;
            // Big enough to outlast the Busy probe below.
            let _ = c.search(jam_ctx, "random", 2_000_000, 1);
        }
    });
    std::thread::sleep(std::time::Duration::from_millis(200));

    // Fill the single queue slot.
    let filler = std::thread::spawn({
        let sock = socket.clone();
        move || {
            let mut c = Client::connect(&format!("unix://{}", sock.display())).expect("connect");
            let _ = c.compile(ctx(), vec![], false);
        }
    });
    std::thread::sleep(std::time::Duration::from_millis(200));

    // Queue is now full: this must be rejected immediately, with a
    // machine-readable backoff hint — not hang.
    let mut c = connect(&handle);
    match c.compile(ctx(), vec![], false).expect("round trip") {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::Busy);
            assert_eq!(e.code, "busy", "stable code on wire errors");
            let hint = e.retry_after_ms.expect("busy carries retry_after_ms");
            assert!(hint >= 50, "hint {hint}ms below the floor");
        }
        other => panic!("expected Busy, got {other:?}"),
    }

    // The rejection is a first-class metric in the unified snapshot.
    let snap = c.metrics().expect("metrics round trip");
    assert!(
        snap.service.requests_rejected >= 1,
        "queue-full rejection missing from requests_rejected"
    );

    jam.join().unwrap();
    filler.join().unwrap();
    handle.shutdown();
    let stats = handle.join();
    assert!(stats.busy_rejections >= 1);
}

#[test]
fn deadline_exceeded_mid_search_is_structured_and_counted() {
    let handle = start("deadline", |_| {});
    let mut c = connect(&handle);
    let mut d_ctx = ctx();
    d_ctx.deadline_ms = 1;
    let resp = c
        .request(&Request::Search(SearchRequest {
            ctx: d_ctx,
            strategy: "random".into(),
            budget: 5_000_000, // cannot finish in 1ms
            seed: 3,
        }))
        .expect("round trip");
    match resp {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::DeadlineExceeded);
            assert_eq!(e.code, "deadline_exceeded");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // The cancellation is a first-class metric in the unified snapshot.
    let snap = c.metrics().expect("metrics round trip");
    assert!(
        snap.service.requests_cancelled >= 1,
        "deadline cancellation missing from requests_cancelled"
    );
    handle.shutdown();
    let stats = handle.join();
    assert!(stats.deadline_cancellations >= 1);
}

#[test]
fn bad_requests_get_structured_errors_not_dropped_connections() {
    let handle = start("bad", |_| {});
    let mut c = connect(&handle);

    // Unknown machine.
    let mut bad = ctx();
    bad.machine = "quantum".into();
    match c.compile(bad, vec![], false).expect("round trip") {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // Unknown optimization name.
    match c
        .compile(ctx(), vec!["transmogrify".into()], false)
        .expect("round trip")
    {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // Unknown strategy.
    match c.search(ctx(), "bogo", 10, 1).expect("round trip") {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // Frontend error in the source.
    let mut syn = ctx();
    syn.source = "int main( {".into();
    match c.compile(syn, vec![], false).expect("round trip") {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }

    // The same connection still serves good requests afterwards.
    match c
        .compile(ctx(), vec!["dce".into()], false)
        .expect("round trip")
    {
        Response::Compile(r) => assert!(r.cycles.is_finite()),
        other => panic!("expected Compile, got {other:?}"),
    }

    handle.shutdown();
    let stats = handle.join();
    assert!(stats.bad_requests >= 4);
}

#[test]
fn shutdown_drains_persists_and_next_server_warms_from_the_store() {
    let kb_path = scratch("persist.kb.json");
    let _ = std::fs::remove_file(&kb_path);

    // Round 1: populate the cache, shut down via the admin plane.
    let handle = start("persist1", |c| c.kb_path = Some(kb_path.clone()));
    let mut client = connect(&handle);
    let cold = search_ok(&mut client);
    assert!(cold.stats.eval_misses > 0);
    match client.shutdown().expect("shutdown round trip") {
        Response::Admin(a) => {
            assert_eq!(a.action, "shutdown");
            assert!(a.persisted_entries > 0, "nothing persisted");
        }
        other => panic!("expected Admin ack, got {other:?}"),
    }
    // New work after the drain began is refused, in a structured way —
    // and the refusal is counted (pre-obs, drain rejections vanished
    // from every stats surface).
    match client.compile(ctx(), vec![], false).expect("round trip") {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::ShuttingDown);
            assert_eq!(e.code, "shutting_down");
        }
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    let snap = client.metrics().expect("admin plane serves while draining");
    assert!(
        snap.service.requests_rejected >= 1,
        "drain rejection missing from requests_rejected"
    );
    handle.join();

    // The store on disk holds the snapshot.
    let kb = KnowledgeBase::load(&kb_path).expect("store parses");
    assert!(
        kb.eval_caches.iter().any(|c| !c.entries.is_empty()),
        "no eval-cache snapshot in the store"
    );

    // Round 2: a fresh daemon process-equivalent warms from the store —
    // the same search runs zero-to-few raw simulations.
    let handle = start("persist2", |c| c.kb_path = Some(kb_path.clone()));
    let warm = search_ok(&mut connect(&handle));
    assert!(
        warm.stats.eval_misses * 5 <= cold.stats.eval_misses,
        "restarted daemon did not warm from the kb store"
    );
    assert_eq!(warm.best_sequence, cold.best_sequence);
    assert_eq!(warm.best_so_far, cold.best_so_far);
    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_file(&kb_path);
}

#[test]
fn admin_metrics_is_the_unified_snapshot_with_full_pass_coverage() {
    let kb_path = scratch("metrics.kb.json");
    let _ = std::fs::remove_file(&kb_path);
    let handle = start("metrics", |c| c.kb_path = Some(kb_path.clone()));
    let mut c = connect(&handle);
    search_ok(&mut c);

    // `Admin(Metrics)` returns the one workspace-wide snapshot type —
    // the same `ic_obs::Snapshot` that `icc --metrics-json` prints —
    // and it survives a JSON round trip through that shared schema.
    let snap = c.metrics().expect("metrics round trip");
    assert_eq!(snap.context, "ic-serve");
    assert_eq!(snap.schema_version, ic_obs::SNAPSHOT_SCHEMA_VERSION);
    let reparsed = ic_obs::Snapshot::from_json(&snap.to_json()).expect("schema round trip");
    assert_eq!(reparsed, snap);

    // Request accounting and engine cache activity are all present.
    assert!(snap.service.search_requests >= 1);
    assert_eq!(snap.service.engines, 1);
    assert!(snap.eval_cache.misses > 0, "search must have simulated");
    assert!(
        snap.compile_cache.passes_run > 0,
        "search must have run passes"
    );
    // The warm engine simulated through the shared decode cache: a
    // search re-decodes structurally identical modules via cache hits.
    assert!(
        snap.sim.decode.hits > 0,
        "warm engine must hit the decode cache: {:?}",
        snap.sim.decode
    );
    assert!(
        snap.sim.insts_simulated > 0 && snap.sim.sim_nanos > 0,
        "simulator throughput stats missing: {:?}",
        snap.sim
    );
    assert!(
        snap.histograms.iter().any(|h| h.name == "serve.service_us"),
        "daemon latency histogram missing: {:?}",
        snap.histograms
    );

    // Profile rows cover every registered pass: a pass that never ran
    // still has a (zeroed) row.
    for opt in ic_passes::Opt::ALL {
        assert!(
            snap.passes.iter().any(|p| p.pass == opt.name()),
            "no profile row for pass {}",
            opt.name()
        );
    }
    assert!(
        snap.passes.iter().any(|p| p.calls > 0 && p.wall_ns > 0),
        "no pass recorded any work"
    );

    // Flush writes MetricsRecords through to the kb store: the
    // last-known snapshots survive the daemon.
    match c.flush().expect("flush round trip") {
        Response::Admin(a) => assert_eq!(a.action, "flush"),
        other => panic!("expected Admin ack, got {other:?}"),
    }
    handle.shutdown();
    handle.join();
    let kb = KnowledgeBase::load(&kb_path).expect("store parses");
    let rec = kb
        .metrics_for("ic-serve")
        .expect("aggregate metrics record persisted");
    assert!(rec.snapshot.service.search_requests >= 1);
    assert!(rec.unix_ms > 0);
    assert!(
        kb.metrics.len() >= 2,
        "expected per-engine + aggregate records, got {}",
        kb.metrics.len()
    );
    let _ = std::fs::remove_file(&kb_path);
}

#[test]
fn admin_compact_trims_the_store_while_serving_load() {
    let kb_path = scratch("compact.kb.json");
    let _ = std::fs::remove_file(&kb_path);
    let handle = start("compact", |c| c.kb_path = Some(kb_path.clone()));

    // Load the cache well past the compaction ceiling.
    let mut c = connect(&handle);
    let cold = search_ok(&mut c);
    assert!(cold.stats.eval_misses > 0);

    // Compact *while* concurrent searches hammer the same engine: the
    // admin plane must trim the kb without wedging or corrupting the
    // data plane.
    let socket = handle.socket().to_path_buf();
    let load: Vec<_> = (0..2)
        .map(|i| {
            let sock = socket.clone();
            std::thread::spawn(move || {
                let mut c =
                    Client::connect(&format!("unix://{}", sock.display())).expect("connect");
                for round in 0..4 {
                    match c
                        .search(ctx(), "random", BUDGET, 1000 + i * 100 + round)
                        .expect("search under compaction")
                    {
                        Response::Search(s) => assert!(s.best_cost.is_finite()),
                        other => panic!("expected Search, got {other:?}"),
                    }
                }
            })
        })
        .collect();
    let keep = 10;
    match c.compact(keep).expect("compact round trip") {
        Response::Admin(a) => {
            assert_eq!(a.action, "compact");
            assert!(
                a.dropped_entries > 0,
                "{BUDGET} evaluations compacted to {keep} should drop entries"
            );
        }
        other => panic!("expected Admin ack, got {other:?}"),
    }
    for t in load {
        t.join().expect("load thread");
    }
    // Zero is rejected as a bad request, not applied (it would erase
    // the store).
    match c.compact(0).expect("round trip") {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }

    // The engine's in-memory memo is untouched — the same search still
    // answers from cache, bit-identical.
    let warm = search_ok(&mut c);
    assert_eq!(warm.best_sequence, cold.best_sequence);
    assert_eq!(warm.best_so_far, cold.best_so_far);

    handle.shutdown();
    handle.join();
    // The persisted store obeys the ceiling (the final shutdown flush
    // re-merges the full memo, so check against the pre-shutdown save:
    // compaction wrote a trimmed store at compact time; after the final
    // flush the record may regrow — what must hold is that the store
    // parses and warms).
    let kb = KnowledgeBase::load(&kb_path).expect("store parses after compaction");
    assert!(kb.eval_caches.iter().any(|r| !r.entries.is_empty()));
    let _ = std::fs::remove_file(&kb_path);
}

#[test]
fn predict_mode_serves_ranked_searches_and_retrains_online() {
    let kb_path = scratch("predict.kb.json");
    let _ = std::fs::remove_file(&kb_path);
    let handle = start("predict", |c| {
        c.kb_path = Some(kb_path.clone());
        c.predict = true;
        c.verify_fraction = 0.25;
        c.retrain_rows = 16;
    });
    let mut c = connect(&handle);

    // Round 1: no model yet — the search bypasses (full simulation) and
    // stays bit-identical to the non-predicting daemon.
    let (ref_seq, ref_cost, ref_traj) = local_reference();
    let cold = search_ok(&mut c);
    assert_eq!(cold.best_sequence, ref_seq, "bypass must stay exact");
    assert_eq!(cold.best_cost.to_bits(), ref_cost.to_bits());
    assert_eq!(cold.best_so_far, ref_traj);
    let snap = c.metrics().expect("metrics");
    assert_eq!(snap.predict.batches, 1);
    assert_eq!(snap.predict.bypassed, 1, "no model: batch passes through");
    assert_eq!(snap.predict.model_version, 0);

    // Flush: write-through feeds the training set, and the daemon
    // retrains its model online.
    match c.flush().expect("flush round trip") {
        Response::Admin(a) => assert_eq!(a.action, "flush"),
        other => panic!("expected Admin ack, got {other:?}"),
    }
    let snap = c.metrics().expect("metrics");
    assert!(
        snap.predict.model_version >= 1,
        "flush should have trained a model: {:?}",
        snap.predict
    );
    assert!(snap.predict.retrains >= 1);
    assert!(snap.predict.training_rows as usize >= ic_predict::MIN_TRAINING_ROWS);

    // Round 2, different seed: the model ranks, only the top fraction
    // simulates.
    let predicted = match c
        .search(ctx(), "random", BUDGET, SEED + 1)
        .expect("predicted search")
    {
        Response::Search(s) => s,
        other => panic!("expected Search, got {other:?}"),
    };
    assert!(predicted.best_cost.is_finite());
    let snap = c.metrics().expect("metrics");
    assert!(
        snap.predict.predicted > 0,
        "model installed, fraction 0.25 — some candidates must be answered \
         by prediction: {:?}",
        snap.predict
    );
    assert!(
        snap.predict.savings_factor() > 1.0,
        "prediction saved no simulations: {:?}",
        snap.predict
    );

    // The versioned model is persisted: a restarted daemon loads it and
    // predicts from its first search.
    handle.shutdown();
    handle.join();
    let kb = KnowledgeBase::load(&kb_path).expect("store parses");
    assert!(
        kb.models.iter().any(|m| m.version >= 1),
        "no ModelRecord persisted"
    );

    let handle = start("predict2", |c| {
        c.kb_path = Some(kb_path.clone());
        c.predict = true;
        c.verify_fraction = 0.25;
        c.retrain_rows = 16;
    });
    let mut c = connect(&handle);
    match c
        .search(ctx(), "random", BUDGET, SEED + 2)
        .expect("search on restarted daemon")
    {
        Response::Search(s) => assert!(s.best_cost.is_finite()),
        other => panic!("expected Search, got {other:?}"),
    }
    let snap = c.metrics().expect("metrics");
    assert!(
        snap.predict.model_version >= 1,
        "restarted daemon did not load the persisted model: {:?}",
        snap.predict
    );
    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_file(&kb_path);
}
