//! Property tests for the `ic-serve` wire protocol.
//!
//! Every request/response the protocol can express must survive a
//! serialize → frame → unframe → deserialize round trip unchanged —
//! except non-finite costs, which collapse to the protocol's one
//! canonical non-finite value, `+∞` (JSON has no `inf`/`nan` literals;
//! the vendored serde writes them as `null`).

use ic_serve::proto::{
    decode_versioned, envelope_json, read_message, read_message_versioned, write_message,
    write_message_versioned, AdminRequest, CharacterizeRequest, CompileRequest, CompileResponse,
    ErrorKind, ErrorResponse, FrameError, JobContext, Request, RequestStats, Response,
    SearchRequest, SearchResponse, StatsResponse, PROTOCOL_VERSION,
};
use proptest::prelude::*;
use std::io::BufReader;

/// What any in-protocol `f64` becomes after one round trip.
fn canonical(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        f64::INFINITY
    }
}

/// Decode a generated code into a cost, hitting every f64 class.
fn cost_from_code(code: u64) -> f64 {
    match code % 5 {
        0 => f64::INFINITY,
        1 => f64::NEG_INFINITY,
        2 => f64::NAN,
        // Integer-valued f64s round-trip exactly through decimal JSON.
        _ => (code / 5) as f64,
    }
}

fn round_trip<T: serde::Serialize + serde::Deserialize>(v: &T) -> T {
    let mut buf = Vec::new();
    write_message(&mut buf, v).expect("serialize");
    read_message(&mut BufReader::new(&buf[..]))
        .expect("deserialize")
        .expect("not EOF")
}

proptest! {
    #[test]
    fn requests_round_trip(
        name_bytes in prop::collection::vec(97u8..123, 1..16),
        src_bytes in prop::collection::vec(32u8..127, 0..200),
        machine in prop::sample::select(vec!["vliw", "amd", "tiny"]),
        strategy in prop::sample::select(vec!["random", "hillclimb", "genetic", "anneal"]),
        opt_idx in prop::collection::vec(0usize..13, 0..8),
        fuel in 1u64..1_000_000_000_000,
        deadline_ms in 0u64..60_000,
        budget in 1usize..10_000,
        seed in 0u64..u64::MAX,
        emit_ir in prop::sample::select(vec![false, true]),
    ) {
        let ctx = JobContext {
            name: String::from_utf8(name_bytes).unwrap(),
            source: String::from_utf8(src_bytes).unwrap(),
            machine: machine.to_string(),
            fuel,
            deadline_ms,
        };
        let sequence: Vec<String> = opt_idx
            .iter()
            .map(|&i| ic_passes::Opt::PAPER_13[i].name().to_string())
            .collect();
        let requests = [
            Request::Compile(CompileRequest { ctx: ctx.clone(), sequence, emit_ir }),
            Request::Search(SearchRequest {
                ctx: ctx.clone(),
                strategy: strategy.to_string(),
                budget,
                seed,
            }),
            Request::Characterize(CharacterizeRequest { ctx }),
            Request::Admin(AdminRequest::Stats),
            Request::Admin(AdminRequest::Metrics),
            Request::Admin(AdminRequest::Flush),
            Request::Admin(AdminRequest::Shutdown),
        ];
        for req in &requests {
            prop_assert_eq!(&round_trip(req), req);
        }
    }

    #[test]
    fn responses_round_trip_with_canonical_non_finite_costs(
        cost_codes in prop::collection::vec(0u64..1_000_000, 1..60),
        counters in prop::collection::vec(0u64..u64::MAX / 2, 0..8),
        hits in 0u64..1_000_000,
        misses in 0u64..1_000_000,
        evaluations in 0usize..100_000,
        result in -1_000_000i64..1_000_000,
    ) {
        let costs: Vec<f64> = cost_codes.iter().map(|&c| cost_from_code(c)).collect();
        let stats = RequestStats {
            queue_ms: 0.25,
            service_ms: 1.5,
            eval_hits: hits,
            eval_misses: misses,
            compile_hits: hits / 2,
            compile_misses: misses / 2,
        };
        let named: Vec<(String, u64)> = counters
            .iter()
            .enumerate()
            .map(|(i, &v)| (format!("c{i}"), v))
            .collect();

        let search = Response::Search(SearchResponse {
            best_sequence: vec!["dce".into(), "licm".into()],
            best_cost: costs[0],
            best_so_far: costs.clone(),
            evaluations,
            stats,
        });
        match round_trip(&search) {
            Response::Search(s) => {
                prop_assert_eq!(s.best_cost.to_bits(), canonical(costs[0]).to_bits());
                prop_assert_eq!(s.best_so_far.len(), costs.len());
                for (got, want) in s.best_so_far.iter().zip(&costs) {
                    prop_assert_eq!(got.to_bits(), canonical(*want).to_bits());
                }
                prop_assert_eq!(s.evaluations, evaluations);
                prop_assert_eq!(s.stats, stats);
            }
            other => return Err(TestCaseError::fail(format!("wrong variant: {other:?}"))),
        }

        let compile = Response::Compile(CompileResponse {
            cycles: costs[0],
            instructions: hits,
            result,
            counters: named.clone(),
            ir: Some("module m\n".into()),
            stats,
        });
        match round_trip(&compile) {
            Response::Compile(c) => {
                prop_assert_eq!(c.cycles.to_bits(), canonical(costs[0]).to_bits());
                prop_assert_eq!(c.result, result);
                prop_assert_eq!(c.counters, named);
                prop_assert_eq!(c.ir.as_deref(), Some("module m\n"));
            }
            other => return Err(TestCaseError::fail(format!("wrong variant: {other:?}"))),
        }
    }

    #[test]
    fn error_and_stats_responses_round_trip(
        retry in 0u64..100_000,
        with_retry in prop::sample::select(vec![false, true]),
        kind in prop::sample::select(vec![
            ErrorKind::Busy,
            ErrorKind::DeadlineExceeded,
            ErrorKind::BadRequest,
            ErrorKind::ShuttingDown,
            ErrorKind::Internal,
        ]),
        counts in prop::collection::vec(0u64..u64::MAX / 2, 6..7),
    ) {
        let mut resp = ErrorResponse::new(kind, "queue full");
        resp.retry_after_ms = with_retry.then_some(retry);
        prop_assert_eq!(resp.code.as_str(), kind.code(), "stable code filled in");
        let err = Response::Error(resp);
        prop_assert_eq!(&round_trip(&err), &err);

        // The unified metrics snapshot rides the wire unchanged too.
        let mut snap = ic_obs::Snapshot::for_context("ic-serve");
        snap.service.requests_rejected = counts[0];
        snap.service.requests_cancelled = counts[1];
        snap.counters = vec![("search.evaluations".into(), counts[2])];
        snap.canonicalize();
        let metrics = Response::Metrics(Box::new(snap));
        prop_assert_eq!(&round_trip(&metrics), &metrics);

        let stats = Response::Stats(StatsResponse {
            protocol_version: 1,
            compile_requests: counts[0],
            search_requests: counts[1],
            characterize_requests: counts[2],
            busy_rejections: counts[3],
            deadline_cancellations: counts[4],
            bad_requests: counts[5],
            queue_depth: 3,
            engines: 2,
            eval_hits: counts[0],
            eval_misses: counts[1],
            eval_entries: counts[2],
            compile_hits: counts[3],
            compile_misses: counts[4],
            uptime_ms: 1234.5,
        });
        prop_assert_eq!(&round_trip(&stats), &stats);
    }
}

/// Build the arbitrary request the versioning properties exercise.
/// The parameters mirror the proptest generators one-to-one.
#[allow(clippy::too_many_arguments)]
fn versioned_probe_request(
    name_bytes: Vec<u8>,
    src_bytes: Vec<u8>,
    machine: &str,
    fuel: u64,
    deadline_ms: u64,
    budget: usize,
    seed: u64,
    which: u8,
) -> Request {
    let ctx = JobContext {
        name: String::from_utf8(name_bytes).unwrap(),
        source: String::from_utf8(src_bytes).unwrap(),
        machine: machine.to_string(),
        fuel,
        deadline_ms,
    };
    match which % 4 {
        0 => Request::Compile(CompileRequest {
            ctx,
            sequence: vec!["dce".into()],
            emit_ir: false,
        }),
        1 => Request::Search(SearchRequest {
            ctx,
            strategy: "random".into(),
            budget,
            seed,
        }),
        2 => Request::Characterize(CharacterizeRequest { ctx }),
        _ => Request::Admin(AdminRequest::Stats),
    }
}

proptest! {
    /// The versioning contract, property-checked over arbitrary
    /// requests:
    ///  1. the protocol-2 envelope round-trips, and decodes as
    ///     `version == PROTOCOL_VERSION, enveloped == true`;
    ///  2. a PR-3-era bare frame — written by the *old* writer — is
    ///     accepted and decodes as `version == 1, enveloped == false`;
    ///  3. unknown envelope fields are ignored;
    ///  4. any out-of-range version is refused with the stable
    ///     `FrameError::Version` (→ `ic_obs::Error::ProtocolMismatch`,
    ///     wire code `protocol_mismatch`), never misparsed as data.
    #[test]
    fn versioning_contract_holds_for_arbitrary_requests(
        name_bytes in prop::collection::vec(97u8..123, 1..16),
        src_bytes in prop::collection::vec(32u8..127, 0..200),
        machine in prop::sample::select(vec!["vliw", "amd", "tiny"]),
        fuel in 1u64..1_000_000_000_000,
        deadline_ms in 0u64..60_000,
        budget in 1usize..10_000,
        seed in 0u64..u64::MAX,
        which in 0u8..4,
        extra_key in prop::collection::vec(97u8..123, 1..12),
        bad_version in prop::sample::select(vec![0u64, 3, 4, 99, u32::MAX as u64]),
    ) {
        let req = versioned_probe_request(
            name_bytes, src_bytes, machine, fuel, deadline_ms, budget, seed, which,
        );

        // 1. Envelope round trip, through both the string codec and the
        // framed writer/reader pair.
        let enveloped = envelope_json(&req);
        let vm = decode_versioned::<Request>(&enveloped).expect("envelope decodes");
        prop_assert_eq!(&vm.msg, &req);
        prop_assert_eq!(vm.version, PROTOCOL_VERSION);
        prop_assert!(vm.enveloped);
        let mut buf = Vec::new();
        write_message_versioned(&mut buf, &req).expect("write");
        let vm = read_message_versioned::<Request>(&mut BufReader::new(&buf[..]))
            .expect("read")
            .expect("not EOF");
        prop_assert_eq!(&vm.msg, &req);
        prop_assert!(vm.enveloped);

        // 2. A PR-3-era frame: written by the protocol-1 writer, read
        // by today's reader. Accepted, attributed to version 1.
        let mut old = Vec::new();
        write_message(&mut old, &req).expect("old writer");
        let vm = read_message_versioned::<Request>(&mut BufReader::new(&old[..]))
            .expect("new reader accepts old frames")
            .expect("not EOF");
        prop_assert_eq!(&vm.msg, &req);
        prop_assert_eq!(vm.version, 1);
        prop_assert!(!vm.enveloped);

        // 3. Unknown envelope fields are ignored (forward compat).
        let extra = String::from_utf8(extra_key).unwrap();
        let inner = serde_json::to_string(&req).expect("inner json");
        let padded = format!(
            "{{\"v\":{PROTOCOL_VERSION},\"{extra}\":\"ignored\",\"body\":{inner}}}"
        );
        let vm = decode_versioned::<Request>(&padded).expect("unknown fields ignored");
        prop_assert_eq!(&vm.msg, &req);
        prop_assert!(vm.enveloped);

        // 4. Out-of-range versions are a stable, typed refusal.
        let future = format!("{{\"v\":{bad_version},\"body\":{inner}}}");
        match decode_versioned::<Request>(&future) {
            Err(FrameError::Version { found, supported }) => {
                prop_assert_eq!(found as u64, bad_version);
                prop_assert_eq!(supported, PROTOCOL_VERSION);
                let err = ErrorResponse::from(
                    FrameError::Version { found, supported }.to_error(),
                );
                prop_assert_eq!(err.kind, ErrorKind::BadRequest);
                prop_assert_eq!(err.code.as_str(), "protocol_mismatch");
            }
            other => {
                return Err(TestCaseError::fail(format!(
                    "version {bad_version} must be refused, got {other:?}"
                )))
            }
        }
    }
}
