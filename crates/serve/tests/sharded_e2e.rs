//! End-to-end tests for the sharded async daemon: deterministic
//! shard routing across restarts, per-shard admission control, the
//! HTTP/JSON gateway (proven byte-identical to the framed transport),
//! the protocol-version compat rule on a live socket, and the client's
//! uniform per-request timeout.

use ic_serve::engine::fingerprint_for;
use ic_serve::proto::{
    decode_versioned, envelope_json, CompileRequest, ErrorKind, Request, Response,
};
use ic_serve::{shard_for, Client, JobContext, ServeConfig, Server, ServerHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

const SOURCE: &str = "\
int a[64];
int main() {
    int s = 0;
    for (int i = 0; i < 64; i = i + 1) a[i] = i * 3 + 1;
    for (int i = 0; i < 64; i = i + 1) s = s + a[i] * a[i];
    return s;
}
";

fn ctx_named(name: &str) -> JobContext {
    JobContext {
        name: name.into(),
        source: SOURCE.into(),
        machine: "vliw".into(),
        fuel: 100_000_000,
        deadline_ms: 0,
    }
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ic-shard-test-{}-{tag}", std::process::id()))
}

fn start(tag: &str, mutate: impl FnOnce(&mut ServeConfig)) -> ServerHandle {
    let mut cfg = ServeConfig {
        socket: scratch(&format!("{tag}.sock")),
        workers: 2,
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    mutate(&mut cfg);
    Server::spawn(cfg, None).expect("server spawns")
}

fn connect(handle: &ServerHandle) -> Client {
    for _ in 0..50 {
        if let Ok(c) = Client::connect(&format!("unix://{}", handle.socket().display())) {
            return c;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("could not connect to {}", handle.socket().display());
}

/// Which shard a context routes to, computed the way the router does.
fn shard_of(ctx: &JobContext, shards: usize) -> usize {
    shard_for(&fingerprint_for(ctx).expect("fingerprint"), shards)
}

/// Find a context name routing to each of `shards` shards.
fn name_per_shard(shards: usize) -> Vec<String> {
    let mut names: Vec<Option<String>> = vec![None; shards];
    for i in 0..1024 {
        let name = format!("w{i}");
        let s = shard_of(&ctx_named(&name), shards);
        if names[s].is_none() {
            names[s] = Some(name);
        }
        if names.iter().all(Option::is_some) {
            break;
        }
    }
    names
        .into_iter()
        .map(|n| n.expect("1024 probes cover every shard"))
        .collect()
}

#[test]
fn shard_routing_is_deterministic_across_restarts() {
    let shards = 4usize;
    let names: Vec<String> = (0..8).map(|i| format!("prog{i}")).collect();

    // The routing function itself is pure and restart-stable; predict
    // the per-shard execution histogram from it.
    let mut predicted = vec![0u64; shards];
    for name in &names {
        predicted[shard_of(&ctx_named(name), shards)] += 1;
    }
    assert!(
        predicted.iter().filter(|&&n| n > 0).count() >= 2,
        "8 contexts should spread over at least 2 of 4 shards: {predicted:?}"
    );

    let observe = |tag: &str| -> Vec<u64> {
        let handle = start(tag, |c| c.shards = shards);
        let mut client = connect(&handle);
        for name in &names {
            match client
                .compile(ctx_named(name), vec!["dce".into()], false)
                .expect("compile")
            {
                Response::Compile(r) => assert!(r.cycles.is_finite()),
                other => panic!("expected Compile, got {other:?}"),
            }
        }
        let snap = client.metrics().expect("metrics");
        assert_eq!(snap.shards.len(), shards, "one stats block per shard");
        let executed: Vec<u64> = snap.shards.iter().map(|s| s.executed).collect();
        for (i, s) in snap.shards.iter().enumerate() {
            assert_eq!(s.shard, i as u64, "shard blocks are dense and ordered");
        }
        handle.shutdown();
        handle.join();
        executed
    };

    // Two independent daemon instances (fresh pools, fresh sockets)
    // must route the same contexts to the same shards — and both must
    // match the pure function's prediction.
    let first = observe("route1");
    assert_eq!(first, predicted, "observed routing diverged from shard_for");
    let second = observe("route2");
    assert_eq!(first, second, "routing changed across restart");
}

#[test]
fn a_saturated_shard_rejects_while_other_shards_keep_serving() {
    let shards = 2usize;
    let names = name_per_shard(shards);
    let (hot, cold) = (names[0].clone(), names[1].clone());
    let hot_shard = shard_of(&ctx_named(&hot), shards);
    let cold_shard = shard_of(&ctx_named(&cold), shards);
    assert_ne!(hot_shard, cold_shard);

    // One worker and one queue slot *per shard*.
    let handle = start("saturate", |c| {
        c.shards = shards;
        c.workers = 1;
        c.queue_capacity = 1;
    });

    // Jam the hot shard's only worker (self-bounded by deadline).
    let socket = handle.socket().to_path_buf();
    let jam = std::thread::spawn({
        let (sock, hot) = (socket.clone(), hot.clone());
        move || {
            let mut c = Client::connect(&format!("unix://{}", sock.display())).expect("connect");
            let mut jam_ctx = ctx_named(&hot);
            jam_ctx.deadline_ms = 3_000;
            let _ = c.search(jam_ctx, "random", 2_000_000, 1);
        }
    });
    std::thread::sleep(Duration::from_millis(200));

    // Fill the hot shard's single queue slot.
    let filler = std::thread::spawn({
        let (sock, hot) = (socket.clone(), hot.clone());
        move || {
            let mut c = Client::connect(&format!("unix://{}", sock.display())).expect("connect");
            let _ = c.compile(ctx_named(&hot), vec!["dce".into()], false);
        }
    });
    std::thread::sleep(Duration::from_millis(200));

    // The hot shard is saturated: immediate structured rejection.
    let mut probe = connect(&handle);
    match probe
        .compile(ctx_named(&hot), vec![], false)
        .expect("round trip")
    {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::Busy);
            assert!(e.retry_after_ms.is_some());
            assert!(
                e.message.contains(&format!("shard {hot_shard}")),
                "busy message should name the shard: {}",
                e.message
            );
        }
        other => panic!("expected Busy, got {other:?}"),
    }

    // The *other* shard is idle and serves normally — saturation is
    // per-shard, not global.
    match probe
        .compile(ctx_named(&cold), vec![], false)
        .expect("round trip")
    {
        Response::Compile(r) => assert!(r.cycles.is_finite()),
        other => panic!("expected Compile on the cold shard, got {other:?}"),
    }

    // Per-shard accounting says exactly which shard bounced.
    let snap = probe.metrics().expect("metrics");
    assert!(snap.shards[hot_shard].rejected >= 1, "{:?}", snap.shards);
    assert_eq!(snap.shards[cold_shard].rejected, 0, "{:?}", snap.shards);
    assert!(snap.shards[cold_shard].executed >= 1, "{:?}", snap.shards);

    jam.join().unwrap();
    filler.join().unwrap();
    handle.shutdown();
    handle.join();
}

/// One framed round trip over a raw Unix stream, returning the exact
/// response payload bytes (as text).
fn raw_framed_roundtrip(sock: &Path, payload: &str) -> String {
    let stream = UnixStream::connect(sock).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    write!(w, "{}\n{payload}\n", payload.len()).expect("write frame");
    w.flush().expect("flush");
    let mut r = BufReader::new(stream);
    let mut header = String::new();
    r.read_line(&mut header).expect("length prefix");
    let len: usize = header.trim().parse().expect("numeric length");
    let mut body = vec![0u8; len + 1]; // payload + trailing newline
    r.read_exact(&mut body).expect("payload");
    String::from_utf8(body[..len].to_vec()).expect("utf8 payload")
}

/// One HTTP/1.1 round trip over a raw TCP stream: returns (status,
/// headers, exact body text).
fn raw_http_roundtrip(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect http");
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write http request");
    stream.flush().expect("flush");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read http response");
    let raw = String::from_utf8(raw).expect("utf8 response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), body.to_string())
}

#[test]
fn http_and_framed_transports_answer_byte_identically() {
    let handle = start("difftl", |c| c.http = Some("127.0.0.1:0".into()));
    let http_addr = handle.http_addr.expect("http listener bound");
    let sock = handle.socket().to_path_buf();

    let request = Request::Compile(CompileRequest {
        ctx: ctx_named("diff"),
        sequence: vec!["licm".into(), "dce".into()],
        emit_ir: false,
    });
    let frame_payload = envelope_json(&request);
    let http_body = ic_serve::http::body_for(&request);
    let http_path = ic_serve::http::path_for(&request);

    // Warm the memo so repeats are deterministic, then probe each
    // transport with the *same* request.
    let _ = raw_framed_roundtrip(&sock, &frame_payload);
    let framed = raw_framed_roundtrip(&sock, &frame_payload);
    let (status, _, http) = raw_http_roundtrip(http_addr, "POST", http_path, Some(&http_body));
    assert_eq!(status, 200);
    assert_eq!(
        framed, http,
        "transports must produce byte-identical response payloads"
    );
    // And the shared payload is a real, successful compile response.
    let decoded = decode_versioned::<Response>(&framed).expect("decodes");
    assert!(decoded.enveloped);
    match decoded.msg {
        Response::Compile(r) => assert!(r.cycles.is_finite()),
        other => panic!("expected Compile, got {other:?}"),
    }

    // Characterize too — a second endpoint, same identity.
    let request = Request::Characterize(ic_serve::proto::CharacterizeRequest {
        ctx: ctx_named("diff"),
    });
    let frame_payload = envelope_json(&request);
    let _ = raw_framed_roundtrip(&sock, &frame_payload);
    let framed = raw_framed_roundtrip(&sock, &frame_payload);
    let (status, _, http) = raw_http_roundtrip(
        http_addr,
        "POST",
        ic_serve::http::path_for(&request),
        Some(&ic_serve::http::body_for(&request)),
    );
    assert_eq!(status, 200);
    assert_eq!(framed, http);

    handle.shutdown();
    handle.join();
}

#[test]
fn http_gateway_serves_health_metrics_and_errors() {
    let handle = start("gateway", |c| c.http = Some("127.0.0.1:0".into()));
    let http_addr = handle.http_addr.expect("http listener bound");

    // healthz on a live daemon.
    let (status, _, body) = raw_http_roundtrip(http_addr, "GET", "/v1/healthz", None);
    assert_eq!(status, 200);
    assert_eq!(body, "{\"status\":\"ok\"}");

    // A compile through the gateway end to end.
    let request = Request::Compile(CompileRequest {
        ctx: ctx_named("gw"),
        sequence: vec![],
        emit_ir: false,
    });
    let (status, _, body) = raw_http_roundtrip(
        http_addr,
        "POST",
        "/v1/compile",
        Some(&ic_serve::http::body_for(&request)),
    );
    assert_eq!(status, 200);
    match decode_versioned::<Response>(&body).expect("envelope").msg {
        Response::Compile(r) => assert!(r.cycles.is_finite()),
        other => panic!("expected Compile, got {other:?}"),
    }

    // The metrics endpoint returns the unified snapshot schema.
    let (status, _, body) = raw_http_roundtrip(http_addr, "GET", "/v1/metrics", None);
    assert_eq!(status, 200);
    let snap = ic_obs::Snapshot::from_json(&body).expect("snapshot parses");
    assert_eq!(snap.context, "ic-serve");
    assert!(snap.service.compile_requests >= 1);

    // Bad body → 400 with a structured error, connection-level sanity.
    let (status, _, body) = raw_http_roundtrip(http_addr, "POST", "/v1/compile", Some("{nope"));
    assert_eq!(status, 400);
    match decode_versioned::<Response>(&body).expect("envelope").msg {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::BadRequest),
        other => panic!("expected Error, got {other:?}"),
    }

    // Unknown endpoint and unknown method.
    let (status, _, _) = raw_http_roundtrip(http_addr, "GET", "/v2/nope", None);
    assert_eq!(status, 404);
    let (status, _, _) = raw_http_roundtrip(http_addr, "PUT", "/v1/compile", Some("{}"));
    assert_eq!(status, 405);

    // Draining flips healthz to 503 on an already-open connection.
    let mut keep = TcpStream::connect(http_addr).expect("connect");
    write!(keep, "GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut r = BufReader::new(keep.try_clone().unwrap());
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    assert!(line.contains("200"), "pre-drain healthz: {line}");
    // Drain the headers + body of the first response.
    let mut drained = String::new();
    while drained != "\r\n" {
        drained.clear();
        r.read_line(&mut drained).unwrap();
    }
    let mut body = vec![0u8; "{\"status\":\"ok\"}".len()];
    r.read_exact(&mut body).unwrap();

    connect(&handle).shutdown().expect("admin shutdown");
    write!(keep, "GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    line.clear();
    r.read_line(&mut line).unwrap();
    assert!(line.contains("503"), "post-drain healthz: {line}");

    handle.join();
}

#[test]
fn protocol_version_rule_holds_on_a_live_socket() {
    let handle = start("version", |_| {});
    let sock = handle.socket().to_path_buf();
    let request = Request::Compile(CompileRequest {
        ctx: ctx_named("ver"),
        sequence: vec![],
        emit_ir: false,
    });

    // A bare PR-3-era frame (no envelope) is protocol 1: the server
    // answers, and mirrors the bare form.
    let bare = serde_json::to_string(&request).unwrap();
    let reply = raw_framed_roundtrip(&sock, &bare);
    let vm = decode_versioned::<Response>(&reply).expect("decodes");
    assert!(!vm.enveloped, "bare request must get a bare response");
    assert_eq!(vm.version, 1);
    match vm.msg {
        Response::Compile(r) => assert!(r.cycles.is_finite()),
        other => panic!("expected Compile, got {other:?}"),
    }

    // A future-version envelope gets the stable mismatch error — the
    // connection survives it.
    let inner = serde_json::to_string(&request).unwrap();
    let future = format!("{{\"v\":99,\"body\":{inner}}}");
    let reply = raw_framed_roundtrip(&sock, &future);
    let vm = decode_versioned::<Response>(&reply).expect("decodes");
    assert!(vm.enveloped, "version errors answer in envelope form");
    match vm.msg {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::BadRequest);
            assert_eq!(e.code, "protocol_mismatch");
        }
        other => panic!("expected protocol_mismatch, got {other:?}"),
    }

    // Unknown envelope fields are ignored (forward compat).
    let padded = format!("{{\"v\":2,\"trace_id\":\"abc\",\"body\":{inner}}}");
    let reply = raw_framed_roundtrip(&sock, &padded);
    let vm = decode_versioned::<Response>(&reply).expect("decodes");
    assert!(vm.enveloped);
    match vm.msg {
        Response::Compile(r) => assert!(r.cycles.is_finite()),
        other => panic!("expected Compile, got {other:?}"),
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn client_timeout_is_uniform_and_cancellations_are_counted() {
    let handle = start("timeout", |_| {});
    let mut c = connect(&handle);

    // Warm the engine for this context first, so the measured path is
    // the search itself and not one-time engine construction (which
    // can dominate on a loaded machine).
    match c.compile(ctx_named("slow"), vec![], false).expect("warm") {
        Response::Compile(r) => assert!(r.cycles.is_finite()),
        other => panic!("expected Compile, got {other:?}"),
    }

    // With a client-side timeout installed, a request with no explicit
    // deadline inherits it: the server cancels the overdue search and
    // the cancellation lands in requests_cancelled. Before the redesign
    // the sync client simply hung here. The budget must exceed what
    // 100ms of real evaluations can cover, but not by so much that the
    // post-cancellation drain (expired evaluations short-circuit but
    // the strategy still iterates) outlives the socket backstop.
    c.set_timeout(Some(Duration::from_millis(100)))
        .expect("set");
    assert_eq!(c.timeout(), Some(Duration::from_millis(100)));
    match c
        .search(ctx_named("slow"), "random", 50_000, 3)
        .expect("round trip within the socket backstop")
    {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::DeadlineExceeded),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // The accounting is uniform across transports/endpoints: the
    // snapshot counts the cancellation.
    c.set_timeout(None).expect("clear");
    let snap = c.metrics().expect("metrics");
    assert!(
        snap.service.requests_cancelled >= 1,
        "client-injected deadline missing from requests_cancelled"
    );

    // An explicit per-request deadline wins over the injected one.
    c.set_timeout(Some(Duration::from_secs(30))).expect("set");
    let mut explicit = ctx_named("slow2");
    explicit.deadline_ms = 5;
    match c.search(explicit, "random", 50_000, 4).expect("round trip") {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::DeadlineExceeded),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    handle.shutdown();
    handle.join();
}
