//! Property tests on the sequence space: dense indexing is a bijection
//! and every constructive operation stays inside the space.

use ic_passes::Opt;
use ic_search::SequenceSpace;
use proptest::prelude::*;

proptest! {
    #[test]
    fn decode_encode_bijection(idx in 0u64..250_000) {
        let space = SequenceSpace::paper();
        let seq = space.decode(idx);
        prop_assert_eq!(seq.len(), 5);
        prop_assert!(seq.iter().filter(|o| o.is_unroll()).count() <= 1);
        prop_assert_eq!(space.encode(&seq), Some(idx));
    }

    #[test]
    fn mutate_preserves_membership(idx in 0u64..250_000, seed in 0u64..1000) {
        use rand::SeedableRng;
        let space = SequenceSpace::paper();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let seq = space.decode(idx);
        let mutated = space.mutate(&seq, &mut rng);
        prop_assert!(space.encode(&mutated).is_some(), "{:?}", mutated);
        prop_assert_ne!(mutated, seq);
    }

    #[test]
    fn crossover_preserves_membership(a in 0u64..250_000, b in 0u64..250_000, seed in 0u64..1000) {
        use rand::SeedableRng;
        let space = SequenceSpace::paper();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let child = space.crossover(&space.decode(a), &space.decode(b), &mut rng);
        prop_assert!(space.encode(&child).is_some(), "{:?}", child);
    }

    #[test]
    fn smaller_spaces_also_bijective(len in 1usize..5, idx_frac in 0.0f64..1.0) {
        let space = SequenceSpace::new(
            &[Opt::Dce, Opt::Cse, Opt::Licm, Opt::Schedule, Opt::Unroll2, Opt::Unroll8],
            len,
        );
        let idx = (idx_frac * (space.count() - 1) as f64) as u64;
        let seq = space.decode(idx);
        prop_assert_eq!(seq.len(), len);
        prop_assert_eq!(space.encode(&seq), Some(idx));
    }
}
