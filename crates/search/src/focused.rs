//! Model-guided (FOCUSSED) search.
//!
//! A probability model over sequences is fitted on *good* sequences —
//! in the full system, the best sequences other programs found, pulled
//! from the knowledge base by feature similarity (Agakov et al., CGO'06,
//! the paper's reference \[1\]). Search then samples candidate sequences
//! from the model instead of uniformly: the model concentrates
//! evaluations in the regions of the space that were good for similar
//! programs, which is exactly the FOCUSSED line of Fig. 2(b).
//!
//! Two model families, both from the reference: [`ModelKind::Iid`]
//! (independent per-position distributions) and [`ModelKind::Markov`]
//! (first-order transition chain).

use crate::{Evaluator, SearchResult, SequenceSpace};
use ic_passes::Opt;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which distribution family the model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Independent per-position categorical distributions.
    Iid,
    /// First-order Markov chain (initial + transition distributions).
    Markov,
}

/// A learned distribution over optimization sequences.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SequenceModel {
    pub kind: ModelKind,
    alphabet: Vec<Opt>,
    len: usize,
    /// `pos_probs[p][a]` (IID) — P(opt a at position p).
    pos_probs: Vec<Vec<f64>>,
    /// `init[a]`, `trans[a][b]` (Markov).
    init: Vec<f64>,
    trans: Vec<Vec<f64>>,
}

impl SequenceModel {
    /// Fit on `good` sequences with Laplace smoothing `alpha`.
    pub fn fit(space: &SequenceSpace, good: &[Vec<Opt>], alpha: f64, kind: ModelKind) -> Self {
        let alphabet = space.alphabet();
        let a = alphabet.len();
        let len = space.len();
        let idx = |o: Opt| {
            alphabet
                .iter()
                .position(|x| *x == o)
                .expect("opt in alphabet")
        };

        let mut pos_counts = vec![vec![alpha; a]; len];
        let mut init = vec![alpha; a];
        let mut trans = vec![vec![alpha; a]; a];
        for seq in good {
            for (p, &o) in seq.iter().enumerate().take(len) {
                pos_counts[p][idx(o)] += 1.0;
            }
            if let Some(&first) = seq.first() {
                init[idx(first)] += 1.0;
            }
            for w in seq.windows(2) {
                trans[idx(w[0])][idx(w[1])] += 1.0;
            }
        }
        let norm = |v: &mut Vec<f64>| {
            let s: f64 = v.iter().sum();
            for x in v.iter_mut() {
                *x /= s;
            }
        };
        for row in &mut pos_counts {
            norm(row);
        }
        norm(&mut init);
        for row in &mut trans {
            norm(row);
        }
        SequenceModel {
            kind,
            alphabet,
            len,
            pos_probs: pos_counts,
            init,
            trans,
        }
    }

    fn draw(probs: &[f64], mask_unroll: bool, alphabet: &[Opt], rng: &mut SmallRng) -> usize {
        let weights: Vec<f64> = probs
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                if mask_unroll && alphabet[i].is_unroll() {
                    0.0
                } else {
                    p
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            // Degenerate: fall back to the first non-unroll opt.
            return alphabet.iter().position(|o| !o.is_unroll()).unwrap_or(0);
        }
        let mut t = rng.gen_range(0.0..total);
        for (i, w) in weights.iter().enumerate() {
            if t < *w {
                return i;
            }
            t -= w;
        }
        weights.len() - 1
    }

    /// Sample a sequence, respecting the unroll-at-most-once constraint.
    pub fn sample(&self, rng: &mut SmallRng) -> Vec<Opt> {
        let mut out = Vec::with_capacity(self.len);
        let mut used_unroll = false;
        let mut prev: Option<usize> = None;
        for p in 0..self.len {
            let probs = match (self.kind, prev) {
                (ModelKind::Iid, _) => &self.pos_probs[p],
                (ModelKind::Markov, None) => &self.init,
                (ModelKind::Markov, Some(pr)) => &self.trans[pr],
            };
            let i = Self::draw(probs, used_unroll, &self.alphabet, rng);
            used_unroll |= self.alphabet[i].is_unroll();
            out.push(self.alphabet[i]);
            prev = Some(i);
        }
        out
    }

    /// Log-probability of a sequence under the model (for diagnostics).
    pub fn log_prob(&self, seq: &[Opt]) -> f64 {
        let idx = |o: Opt| self.alphabet.iter().position(|x| *x == o).unwrap();
        match self.kind {
            ModelKind::Iid => seq
                .iter()
                .enumerate()
                .map(|(p, &o)| self.pos_probs[p.min(self.len - 1)][idx(o)].max(1e-12).ln())
                .sum(),
            ModelKind::Markov => {
                let mut lp = self.init[idx(seq[0])].max(1e-12).ln();
                for w in seq.windows(2) {
                    lp += self.trans[idx(w[0])][idx(w[1])].max(1e-12).ln();
                }
                lp
            }
        }
    }
}

/// Focused search: evaluate `budget` sequences sampled from `model`.
///
/// Like random search, the model's draws don't depend on observed costs,
/// so all candidates are sampled first and evaluated as one parallel,
/// order-stable batch (bit-identical to the sequential loop). Focused
/// draws concentrate on a small region, so this batch dedups heavily —
/// and hits hard in a [`crate::CachedEvaluator`] across repeated runs.
pub fn run(
    space: &SequenceSpace,
    eval: &dyn Evaluator,
    budget: usize,
    model: &SequenceModel,
    seed: u64,
) -> SearchResult {
    let _ = space; // the model already encodes the space's constraints
    let mut rng = SmallRng::seed_from_u64(seed);
    let seqs: Vec<_> = (0..budget).map(|_| model.sample(&mut rng)).collect();
    let mut result = SearchResult::new();
    result.observe_batch(eval, &seqs);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random;
    use crate::testutil::synthetic_cost;

    fn space() -> SequenceSpace {
        SequenceSpace::new(&Opt::PAPER_13, 5)
    }

    /// "Good sequences from other programs" for the synthetic landscape.
    fn good_seqs() -> Vec<Vec<Opt>> {
        vec![
            vec![Opt::Licm, Opt::Dce, Opt::Unroll4, Opt::Dce, Opt::Schedule],
            vec![
                Opt::Licm,
                Opt::Unroll4,
                Opt::Dce,
                Opt::Schedule,
                Opt::Schedule,
            ],
            vec![Opt::Licm, Opt::Dce, Opt::Dce, Opt::Unroll4, Opt::Schedule],
            vec![Opt::Licm, Opt::Cse, Opt::Unroll4, Opt::Dce, Opt::Schedule],
        ]
    }

    #[test]
    fn samples_respect_constraint() {
        for kind in [ModelKind::Iid, ModelKind::Markov] {
            let m = SequenceModel::fit(&space(), &good_seqs(), 0.1, kind);
            let mut rng = SmallRng::seed_from_u64(3);
            for _ in 0..300 {
                let s = m.sample(&mut rng);
                assert_eq!(s.len(), 5);
                assert!(s.iter().filter(|o| o.is_unroll()).count() <= 1, "{:?}", s);
            }
        }
    }

    #[test]
    fn model_prefers_training_like_sequences() {
        let m = SequenceModel::fit(&space(), &good_seqs(), 0.1, ModelKind::Iid);
        let good = vec![Opt::Licm, Opt::Dce, Opt::Unroll4, Opt::Dce, Opt::Schedule];
        let bad = vec![
            Opt::ConstFold,
            Opt::ConstFold,
            Opt::ConstFold,
            Opt::ConstFold,
            Opt::ConstFold,
        ];
        assert!(m.log_prob(&good) > m.log_prob(&bad));
    }

    #[test]
    fn focused_beats_random_at_small_budgets() {
        // The core claim of Fig. 2(b): at ~10 evaluations, the model-led
        // search is far ahead of random.
        for kind in [ModelKind::Iid, ModelKind::Markov] {
            let m = SequenceModel::fit(&space(), &good_seqs(), 0.1, kind);
            let mut f_total = 0.0;
            let mut r_total = 0.0;
            for seed in 0..10 {
                f_total += run(&space(), &synthetic_cost, 10, &m, seed).best_cost;
                r_total += random::run(&space(), &synthetic_cost, 10, seed).best_cost;
            }
            assert!(
                f_total < r_total,
                "{:?}: focused {f_total} vs random {r_total}",
                kind
            );
        }
    }

    #[test]
    fn reproducible() {
        let m = SequenceModel::fit(&space(), &good_seqs(), 0.1, ModelKind::Markov);
        let a = run(&space(), &synthetic_cost, 25, &m, 4);
        let b = run(&space(), &synthetic_cost, 25, &m, 4);
        assert_eq!(a.best_so_far, b.best_so_far);
    }

    #[test]
    fn smoothing_keeps_support_broad() {
        // With heavy smoothing the model approaches uniform: all opts
        // should appear in samples eventually.
        let m = SequenceModel::fit(&space(), &good_seqs(), 100.0, ModelKind::Iid);
        let mut rng = SmallRng::seed_from_u64(8);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            for o in m.sample(&mut rng) {
                seen.insert(o);
            }
        }
        assert!(seen.len() >= 12, "only saw {:?}", seen);
    }
}
