//! Memoizing evaluator wrapper — the core of the evaluation engine.
//!
//! Search strategies re-visit sequences constantly: random trials collide
//! in the 250k space, the focused model concentrates its draws on a tiny
//! good region, and GA elites are re-examined every generation. A single
//! simulated evaluation costs milliseconds; a cache lookup costs
//! nanoseconds. [`CachedEvaluator`] drops transparently in front of any
//! [`Evaluator`]: identical costs out (the inner evaluator must be
//! deterministic, which every evaluator in this workspace is), with
//! hit/miss/throughput statistics exposed for harness reporting and
//! snapshot/warm APIs so the memo table can persist across runs (the
//! knowledge base stores snapshots keyed by a workload+machine context
//! fingerprint — see `ic-kb` and `ic-core::evalcache`).
//!
//! Concurrency: the table is sharded under `parking_lot` mutexes and the
//! wrapper is `Sync`, so rayon fan-out (see [`crate::batch`]) hits it
//! from many threads. A lock is never held across an inner evaluation.

use crate::{Evaluator, SequenceSpace};
use ic_passes::Opt;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shard count for the index-keyed table (power of two, modest: the
/// table is read-heavy and evaluations dominate lock hold times).
const SHARDS: usize = 16;

/// A point-in-time view of cache activity.
///
/// Since the `ic-obs` unification this is the workspace-wide
/// [`ic_obs::EvalCacheStats`], re-exported under its historical name so
/// existing imports keep compiling; it slots directly into an
/// [`ic_obs::Snapshot`]'s `eval_cache` field.
pub use ic_obs::EvalCacheStats as CacheStats;

/// A transparent memoizing wrapper around any [`Evaluator`].
///
/// Sequences that belong to `space` are keyed by their dense sequence
/// index (exact, collision-free); sequences outside the space (different
/// length, double unroll — e.g. the empty baseline sequence) fall back to
/// a table keyed by the sequence itself.
pub struct CachedEvaluator<E> {
    inner: E,
    space: Arc<SequenceSpace>,
    shards: Vec<Mutex<HashMap<u64, f64>>>,
    misc: Mutex<HashMap<Vec<Opt>, f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
    eval_nanos: AtomicU64,
}

impl<E: Evaluator> CachedEvaluator<E> {
    /// Wrap `inner`, memoizing over `space`. Accepts the space by value
    /// or `Arc`-shared (callers that already hold an `Arc` avoid cloning
    /// the alphabet vectors).
    pub fn new(space: impl Into<Arc<SequenceSpace>>, inner: E) -> Self {
        CachedEvaluator {
            inner,
            space: space.into(),
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            misc: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            eval_nanos: AtomicU64::new(0),
        }
    }

    /// The wrapped evaluator.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The space the cache is keyed over.
    pub fn space(&self) -> &SequenceSpace {
        &self.space
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
            eval_nanos: self.eval_nanos.load(Ordering::Relaxed),
        }
    }

    /// Number of memoized costs.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum::<usize>() + self.misc.lock().len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pre-load `(sequence index, cost)` pairs (e.g. from a knowledge-base
    /// snapshot). Entries with out-of-range indices are ignored; warming
    /// does not count as hits or misses. Returns how many entries were
    /// loaded.
    pub fn warm(&self, entries: impl IntoIterator<Item = (u64, f64)>) -> usize {
        let mut loaded = 0usize;
        for (idx, cost) in entries {
            if idx < self.space.count() {
                self.shard(idx).lock().insert(idx, cost);
                loaded += 1;
            }
        }
        loaded
    }

    /// Dump the in-space memo table as `(sequence index, cost)` pairs,
    /// sorted by index (deterministic regardless of insertion order or
    /// thread interleaving). Out-of-space entries are not included — they
    /// are not addressable in a persisted snapshot.
    pub fn snapshot(&self) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>())
            .collect();
        out.sort_by_key(|&(k, _)| k);
        out
    }

    fn shard(&self, idx: u64) -> &Mutex<HashMap<u64, f64>> {
        &self.shards[(idx as usize) % SHARDS]
    }

    /// Probe the memo table without evaluating. A found cost counts as a
    /// hit (the caller is about to use the value); an absent entry counts
    /// as nothing — the caller decides whether to simulate (a miss, via
    /// [`Evaluator::evaluate`]) or answer by other means (e.g. a learned
    /// cost model in `ic-predict`'s predict-then-verify mode).
    pub fn lookup(&self, seq: &[Opt]) -> Option<f64> {
        let found = match self.space.encode(seq) {
            Some(idx) => self.shard(idx).lock().get(&idx).copied(),
            None => self.misc.lock().get(seq).copied(),
        };
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    fn evaluate_raw(&self, seq: &[Opt]) -> f64 {
        let t0 = Instant::now();
        let cost = self.inner.evaluate(seq);
        self.eval_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
        cost
    }
}

impl<E: Evaluator> Evaluator for CachedEvaluator<E> {
    fn evaluate(&self, seq: &[Opt]) -> f64 {
        match self.space.encode(seq) {
            Some(idx) => {
                if let Some(&cost) = self.shard(idx).lock().get(&idx) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return cost;
                }
                // Not held across the (possibly long) inner evaluation;
                // a concurrent duplicate miss recomputes the same value.
                let cost = self.evaluate_raw(seq);
                self.shard(idx).lock().insert(idx, cost);
                cost
            }
            None => {
                if let Some(&cost) = self.misc.lock().get(seq) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return cost;
                }
                let cost = self.evaluate_raw(seq);
                self.misc.lock().insert(seq.to_vec(), cost);
                cost
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_cost;
    use std::sync::atomic::AtomicUsize;

    fn space() -> SequenceSpace {
        SequenceSpace::new(&Opt::PAPER_13, 5)
    }

    /// An evaluator that counts raw calls.
    struct Counting {
        calls: AtomicUsize,
    }

    impl Evaluator for Counting {
        fn evaluate(&self, seq: &[Opt]) -> f64 {
            self.calls.fetch_add(1, Ordering::SeqCst);
            synthetic_cost(seq)
        }
    }

    #[test]
    fn transparent_and_memoizing() {
        let cache = CachedEvaluator::new(
            space(),
            Counting {
                calls: AtomicUsize::new(0),
            },
        );
        let s = space();
        for round in 0..3 {
            for i in (0..s.count()).step_by(9931) {
                let seq = s.decode(i);
                assert_eq!(cache.evaluate(&seq), synthetic_cost(&seq), "{:?}", seq);
            }
            // Raw calls only grow on the first round.
            let distinct = (0..s.count()).step_by(9931).count();
            assert_eq!(cache.inner().calls.load(Ordering::SeqCst), distinct);
            let stats = cache.stats();
            assert_eq!(stats.misses as usize, distinct);
            assert_eq!(stats.hits as usize, round * distinct);
            assert_eq!(stats.entries, distinct);
        }
    }

    #[test]
    fn out_of_space_sequences_cache_too() {
        let cache = CachedEvaluator::new(
            space(),
            Counting {
                calls: AtomicUsize::new(0),
            },
        );
        // Empty sequence (the -O0 baseline) is not in the length-5 space.
        assert_eq!(cache.evaluate(&[]), synthetic_cost(&[]));
        assert_eq!(cache.evaluate(&[]), synthetic_cost(&[]));
        assert_eq!(cache.inner().calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn warm_and_snapshot_round_trip() {
        let cache = CachedEvaluator::new(space(), synthetic_cost);
        let s = space();
        for i in [0u64, 7, 130_000, 249_999] {
            cache.evaluate(&s.decode(i));
        }
        let snap = cache.snapshot();
        assert_eq!(snap.len(), 4);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "sorted by index");

        let warmed = CachedEvaluator::new(space(), synthetic_cost);
        assert_eq!(warmed.warm(snap.clone()), 4);
        for &(i, c) in &snap {
            assert_eq!(warmed.evaluate(&s.decode(i)), c);
        }
        let stats = warmed.stats();
        assert_eq!(stats.misses, 0, "warm entries served every lookup");
        assert_eq!(stats.hits, 4);
        // Out-of-range indices are rejected.
        assert_eq!(warmed.warm([(u64::MAX, 1.0)]), 0);
    }

    #[test]
    fn lookup_probes_without_evaluating() {
        let cache = CachedEvaluator::new(
            space(),
            Counting {
                calls: AtomicUsize::new(0),
            },
        );
        let s = space();
        let seq = s.decode(42);
        // A probe miss neither evaluates nor counts.
        assert_eq!(cache.lookup(&seq), None);
        assert_eq!(cache.inner().calls.load(Ordering::SeqCst), 0);
        assert_eq!(cache.stats().lookups(), 0);
        // After a real evaluation the probe finds it and counts a hit.
        let cost = cache.evaluate(&seq);
        assert_eq!(cache.lookup(&seq), Some(cost));
        assert_eq!(cache.inner().calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.stats().hits, 1);
        // Out-of-space sequences probe through the misc table.
        assert_eq!(cache.lookup(&[]), None);
        cache.evaluate(&[]);
        assert_eq!(cache.lookup(&[]), Some(synthetic_cost(&[])));
    }

    #[test]
    fn concurrent_hammering_is_consistent() {
        let cache = CachedEvaluator::new(
            space(),
            Counting {
                calls: AtomicUsize::new(0),
            },
        );
        let s = space();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = &cache;
                let s = &s;
                scope.spawn(move || {
                    // All threads walk the same 500 indices (offset start)
                    // so most lookups collide and become hits.
                    for k in 0..500u64 {
                        let idx = ((t * 67 + k) * 101) % (500 * 101) % s.count();
                        let seq = s.decode(idx);
                        assert_eq!(cache.evaluate(&seq), synthetic_cost(&seq));
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.lookups(), 8 * 500);
        // Concurrent duplicate misses may recompute, but the table holds
        // one entry per distinct index and far fewer raw calls than
        // lookups happened.
        assert!(stats.entries <= 4000);
        assert!(stats.misses < 8 * 500);
    }
}
