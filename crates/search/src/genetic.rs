//! A Cooper-style genetic algorithm over optimization sequences
//! (Cooper, Schielke & Subramanian, LCTES'99 — the paper's reference
//! \[33\] used GAs for the phase-ordering problem).

use crate::{Evaluator, SearchResult, SequenceSpace};
use ic_passes::Opt;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// GA hyperparameters.
#[derive(Debug, Clone)]
pub struct GaConfig {
    pub population: usize,
    pub tournament: usize,
    pub mutation_rate: f64,
    /// Fraction of elites copied unchanged each generation.
    pub elitism: f64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 20,
            tournament: 3,
            mutation_rate: 0.3,
            elitism: 0.1,
        }
    }
}

/// Run the GA until `budget` evaluations are spent.
///
/// Evaluation is batched per generation: selection, crossover, and
/// mutation draw only on the *previous* generation's costs, so a whole
/// brood of children is bred first (same RNG stream as breeding one at a
/// time) and then costed as one parallel, order-stable batch — the
/// trajectory is bit-identical to the sequential interleaving.
pub fn run(
    space: &SequenceSpace,
    eval: &dyn Evaluator,
    budget: usize,
    cfg: &GaConfig,
    seed: u64,
) -> SearchResult {
    use crate::BatchEvaluator;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut result = SearchResult::new();
    let mut evals = 0usize;

    let init: Vec<Vec<Opt>> = (0..cfg.population.min(budget))
        .map(|_| space.sample(&mut rng))
        .collect();
    let costs = eval.evaluate_batch(&init);
    for (seq, cost) in init.iter().zip(&costs) {
        result.observe(seq, *cost);
    }
    evals += init.len();
    let mut pop: Vec<(Vec<Opt>, f64)> = init.into_iter().zip(costs).collect();

    while evals < budget && !pop.is_empty() {
        pop.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let elites = ((cfg.population as f64 * cfg.elitism).ceil() as usize).max(1);
        let mut next: Vec<(Vec<Opt>, f64)> = pop[..elites.min(pop.len())].to_vec();

        let brood = cfg
            .population
            .saturating_sub(next.len())
            .min(budget - evals);
        if brood == 0 {
            break; // degenerate config (all elites): nothing left to breed
        }
        let children: Vec<Vec<Opt>> = (0..brood)
            .map(|_| {
                let pick = |rng: &mut SmallRng| -> &(Vec<Opt>, f64) {
                    (0..cfg.tournament)
                        .map(|_| &pop[rng.gen_range(0..pop.len())])
                        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                        .unwrap()
                };
                let a = pick(&mut rng).0.clone();
                let b = pick(&mut rng).0.clone();
                let mut child = space.crossover(&a, &b, &mut rng);
                if rng.gen_bool(cfg.mutation_rate) {
                    child = space.mutate(&child, &mut rng);
                }
                child
            })
            .collect();
        let costs = eval.evaluate_batch(&children);
        for (child, cost) in children.iter().zip(&costs) {
            result.observe(child, *cost);
        }
        evals += children.len();
        next.extend(children.into_iter().zip(costs));
        pop = next;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random;
    use crate::testutil::synthetic_cost;

    fn space() -> SequenceSpace {
        SequenceSpace::new(&Opt::PAPER_13, 5)
    }

    #[test]
    fn budget_respected() {
        let r = run(&space(), &synthetic_cost, 83, &GaConfig::default(), 1);
        assert_eq!(r.evaluations(), 83);
    }

    #[test]
    fn improves_over_generations() {
        let r = run(&space(), &synthetic_cost, 200, &GaConfig::default(), 2);
        let early = r.best_so_far[19];
        let late = r.best_so_far[199];
        assert!(late <= early, "GA must not regress");
    }

    #[test]
    fn competitive_with_random() {
        let mut ga_total = 0.0;
        let mut rnd_total = 0.0;
        for seed in 0..8 {
            ga_total += run(&space(), &synthetic_cost, 120, &GaConfig::default(), seed).best_cost;
            rnd_total += random::run(&space(), &synthetic_cost, 120, seed).best_cost;
        }
        assert!(
            ga_total <= rnd_total * 1.02,
            "ga {ga_total} vs random {rnd_total}"
        );
    }

    #[test]
    fn reproducible() {
        let a = run(&space(), &synthetic_cost, 60, &GaConfig::default(), 5);
        let b = run(&space(), &synthetic_cost, 60, &GaConfig::default(), 5);
        assert_eq!(a.best_so_far, b.best_so_far);
    }
}
