//! Uniform random search — the RANDOM baseline of Fig. 2(b).

use crate::{Evaluator, SearchResult, SequenceSpace};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Evaluate `budget` uniform random sequences.
///
/// All candidates are drawn up front (random search never looks at a
/// cost before choosing the next candidate) and evaluated as one
/// parallel, order-stable batch — the trajectory is bit-identical to the
/// sequential draw-evaluate loop.
pub fn run(space: &SequenceSpace, eval: &dyn Evaluator, budget: usize, seed: u64) -> SearchResult {
    let mut rng = SmallRng::seed_from_u64(seed);
    let seqs: Vec<_> = (0..budget).map(|_| space.sample(&mut rng)).collect();
    let mut result = SearchResult::new();
    result.observe_batch(eval, &seqs);
    result
}

/// Mean best-so-far trajectory over `trials` independent random searches
/// (the paper averages 20 trials "to be statistically meaningful").
pub fn mean_trajectory(
    space: &SequenceSpace,
    eval: &dyn Evaluator,
    budget: usize,
    trials: usize,
    seed: u64,
) -> Vec<f64> {
    let mut acc = vec![0.0; budget];
    for t in 0..trials {
        let r = run(space, eval, budget, seed.wrapping_add(t as u64 * 7919));
        for (a, b) in acc.iter_mut().zip(&r.best_so_far) {
            *a += b;
        }
    }
    acc.into_iter().map(|v| v / trials.max(1) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_cost;
    use ic_passes::Opt;

    fn space() -> SequenceSpace {
        SequenceSpace::new(&Opt::PAPER_13, 5)
    }

    #[test]
    fn best_so_far_is_monotone_nonincreasing() {
        let r = run(&space(), &synthetic_cost, 50, 1);
        assert_eq!(r.evaluations(), 50);
        for w in r.best_so_far.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert_eq!(*r.best_so_far.last().unwrap(), r.best_cost);
    }

    #[test]
    fn seeded_and_reproducible() {
        let a = run(&space(), &synthetic_cost, 30, 99);
        let b = run(&space(), &synthetic_cost, 30, 99);
        assert_eq!(a.best_so_far, b.best_so_far);
        let c = run(&space(), &synthetic_cost, 30, 100);
        assert_ne!(
            a.best_so_far, c.best_so_far,
            "different seed, different path"
        );
    }

    #[test]
    fn more_budget_no_worse() {
        let small = run(&space(), &synthetic_cost, 10, 5);
        let large = run(&space(), &synthetic_cost, 200, 5);
        assert!(large.best_cost <= small.best_cost);
    }

    #[test]
    fn mean_trajectory_shape() {
        let t = mean_trajectory(&space(), &synthetic_cost, 40, 5, 3);
        assert_eq!(t.len(), 40);
        for w in t.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }
}
