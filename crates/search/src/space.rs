//! The optimization-sequence space with the paper's constraints.

use ic_passes::Opt;
use rand::Rng;

/// Length-`len` sequences over `opts`, with unrolling variants allowed at
/// most once per sequence (the paper's footnote 1). Sequences are densely
/// indexed in `0..count()`, enabling exhaustive enumeration, uniform
/// sampling, and compact storage of search results.
///
/// # Index order is lexicographic (and that is a contract)
///
/// Dense indices enumerate the all-base block first — sequences ordered
/// as base-B digit strings, most-significant (earliest) position first —
/// then one block per (unroll position, unroll factor) pair, each again
/// lexicographic over the non-unroll positions. Consecutive indices
/// therefore almost always differ only in the final positions, i.e. they
/// share a long *pipeline prefix*. The prefix-tree compilation cache
/// (`ic_passes::PrefixCache`) turns that adjacency into elided pass
/// applications, so enumeration order is part of the engine's
/// performance contract; `ic-search::exhaustive` documents and tests it.
#[derive(Debug, Clone)]
pub struct SequenceSpace {
    /// Non-unroll optimizations.
    base: Vec<Opt>,
    /// Unroll variants.
    unrolls: Vec<Opt>,
    len: usize,
}

impl SequenceSpace {
    /// Build a space over `opts` with sequences of length `len`.
    pub fn new(opts: &[Opt], len: usize) -> Self {
        assert!(len >= 1);
        let base: Vec<Opt> = opts.iter().copied().filter(|o| !o.is_unroll()).collect();
        let unrolls: Vec<Opt> = opts.iter().copied().filter(|o| o.is_unroll()).collect();
        assert!(!base.is_empty(), "need at least one non-unroll opt");
        SequenceSpace { base, unrolls, len }
    }

    /// The paper's Fig. 2 setup: length-5 sequences over the 13-opt space.
    pub fn paper() -> Self {
        SequenceSpace::new(&Opt::PAPER_13, 5)
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Never empty (len >= 1 enforced).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All optimizations in the space (base then unrolls).
    pub fn alphabet(&self) -> Vec<Opt> {
        self.base
            .iter()
            .chain(self.unrolls.iter())
            .copied()
            .collect()
    }

    fn b(&self) -> u64 {
        self.base.len() as u64
    }

    /// Total number of valid sequences:
    /// `B^L + L * U * B^(L-1)`.
    pub fn count(&self) -> u64 {
        let b = self.b();
        let l = self.len as u32;
        b.pow(l) + self.len as u64 * self.unrolls.len() as u64 * b.pow(l - 1)
    }

    /// Decode a dense index into a sequence. Panics if out of range.
    pub fn decode(&self, index: u64) -> Vec<Opt> {
        let b = self.b();
        let l = self.len;
        let all_base = b.pow(l as u32);
        if index < all_base {
            // Base-B digits.
            let mut out = Vec::with_capacity(l);
            let mut v = index;
            for _ in 0..l {
                out.push(self.base[(v % b) as usize]);
                v /= b;
            }
            out.reverse();
            return out;
        }
        let idx2 = index - all_base;
        let per_pos = self.unrolls.len() as u64 * b.pow(l as u32 - 1);
        let pos = (idx2 / per_pos) as usize;
        assert!(pos < l, "sequence index out of range");
        let rem = idx2 % per_pos;
        let u = (rem / b.pow(l as u32 - 1)) as usize;
        let mut digits = rem % b.pow(l as u32 - 1);
        let mut out = Vec::with_capacity(l);
        for i in 0..l {
            if i == pos {
                out.push(self.unrolls[u]);
            } else {
                out.push(Opt::ConstProp); // placeholder, fixed below
            }
        }
        // Fill base digits right-to-left over non-unroll positions.
        for i in (0..l).rev() {
            if i != pos {
                out[i] = self.base[(digits % b) as usize];
                digits /= b;
            }
        }
        out
    }

    /// Encode a sequence back to its dense index (`None` if the sequence
    /// is not a member of this space, e.g. two unrolls).
    pub fn encode(&self, seq: &[Opt]) -> Option<u64> {
        if seq.len() != self.len {
            return None;
        }
        let b = self.b();
        let l = self.len;
        let upos: Vec<usize> = seq
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_unroll())
            .map(|(i, _)| i)
            .collect();
        let base_idx = |o: Opt| self.base.iter().position(|x| *x == o);
        match upos.len() {
            0 => {
                let mut v = 0u64;
                for &o in seq {
                    v = v * b + base_idx(o)? as u64;
                }
                Some(v)
            }
            1 => {
                let pos = upos[0];
                let u = self.unrolls.iter().position(|x| *x == seq[pos])? as u64;
                let mut digits = 0u64;
                for (i, &o) in seq.iter().enumerate() {
                    if i != pos {
                        digits = digits * b + base_idx(o)? as u64;
                    }
                }
                let per_pos = self.unrolls.len() as u64 * b.pow(l as u32 - 1);
                Some(b.pow(l as u32) + pos as u64 * per_pos + u * b.pow(l as u32 - 1) + digits)
            }
            _ => None,
        }
    }

    /// Uniform random member.
    pub fn sample(&self, rng: &mut impl Rng) -> Vec<Opt> {
        let idx = rng.gen_range(0..self.count());
        self.decode(idx)
    }

    /// Iterate over every sequence in index order.
    pub fn iter(&self) -> impl Iterator<Item = Vec<Opt>> + '_ {
        (0..self.count()).map(|i| self.decode(i))
    }

    /// The paper's Fig. 2(a) plot coordinates: x identifies the length-2
    /// prefix `(t1 t2)`, y the length-3 suffix `(t3 t4 t5)`. Requires
    /// `len == 5`. Coordinates are dense ids over the full alphabet.
    pub fn plot_coords(&self, seq: &[Opt]) -> (u64, u64) {
        let alpha = self.alphabet();
        let a = alpha.len() as u64;
        let id = |o: Opt| alpha.iter().position(|x| *x == o).unwrap() as u64;
        let x = id(seq[0]) * a + id(seq[1]);
        let y = if seq.len() >= 5 {
            id(seq[2]) * a * a + id(seq[3]) * a + id(seq[4])
        } else {
            seq[2..].iter().fold(0, |acc, &o| acc * a + id(o))
        };
        (x, y)
    }

    /// Mutate one position of `seq` into a different valid member
    /// (respecting the unroll-once constraint). Used by local search / GA.
    pub fn mutate(&self, seq: &[Opt], rng: &mut impl Rng) -> Vec<Opt> {
        let mut out = seq.to_vec();
        let pos = rng.gen_range(0..out.len());
        let unroll_elsewhere = out
            .iter()
            .enumerate()
            .any(|(i, o)| i != pos && o.is_unroll());
        let choices: Vec<Opt> = if unroll_elsewhere {
            self.base.clone()
        } else {
            self.alphabet()
        };
        let mut pick = choices[rng.gen_range(0..choices.len())];
        // Avoid no-op mutations when possible.
        if choices.len() > 1 {
            while pick == out[pos] {
                pick = choices[rng.gen_range(0..choices.len())];
            }
        }
        out[pos] = pick;
        out
    }

    /// Single-point crossover that repairs the unroll-once constraint
    /// (keeps the first unroll, downgrades later ones to `Dce`).
    pub fn crossover(&self, a: &[Opt], b: &[Opt], rng: &mut impl Rng) -> Vec<Opt> {
        let cut = rng.gen_range(1..self.len.max(2));
        let mut out: Vec<Opt> = a[..cut.min(a.len())]
            .iter()
            .chain(b[cut.min(b.len())..].iter())
            .copied()
            .collect();
        out.truncate(self.len);
        while out.len() < self.len {
            out.push(self.base[0]);
        }
        let mut seen_unroll = false;
        for o in &mut out {
            if o.is_unroll() {
                if seen_unroll {
                    *o = Opt::Dce;
                }
                seen_unroll = true;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn paper_space_count() {
        let s = SequenceSpace::paper();
        // 10 base opts, 3 unrolls, length 5:
        // 10^5 + 5 * 3 * 10^4 = 100000 + 150000 = 250000.
        assert_eq!(s.count(), 250_000);
    }

    #[test]
    fn decode_encode_round_trip() {
        let s = SequenceSpace::new(
            &[Opt::Dce, Opt::Cse, Opt::Licm, Opt::Unroll2, Opt::Unroll4],
            3,
        );
        // 3 base, 2 unrolls, len 3: 27 + 3*2*9 = 81.
        assert_eq!(s.count(), 81);
        for i in 0..s.count() {
            let seq = s.decode(i);
            assert_eq!(seq.len(), 3);
            let unrolls = seq.iter().filter(|o| o.is_unroll()).count();
            assert!(unrolls <= 1, "{:?}", seq);
            assert_eq!(s.encode(&seq), Some(i), "{:?}", seq);
        }
    }

    #[test]
    fn all_sequences_distinct() {
        let s = SequenceSpace::new(&[Opt::Dce, Opt::Cse, Opt::Unroll2], 3);
        let all: Vec<Vec<Opt>> = s.iter().collect();
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len());
        assert_eq!(all.len() as u64, s.count());
    }

    #[test]
    fn encode_rejects_double_unroll() {
        let s = SequenceSpace::paper();
        let bad = vec![Opt::Unroll2, Opt::Unroll4, Opt::Dce, Opt::Dce, Opt::Dce];
        assert_eq!(s.encode(&bad), None);
    }

    #[test]
    fn sampling_is_in_space() {
        let s = SequenceSpace::paper();
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..200 {
            let seq = s.sample(&mut rng);
            assert!(s.encode(&seq).is_some());
        }
    }

    #[test]
    fn mutation_stays_valid_and_differs() {
        let s = SequenceSpace::paper();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seq = s.sample(&mut rng);
        for _ in 0..100 {
            let next = s.mutate(&seq, &mut rng);
            assert!(s.encode(&next).is_some(), "{:?}", next);
            assert_ne!(next, seq);
            seq = next;
        }
    }

    #[test]
    fn crossover_stays_valid() {
        let s = SequenceSpace::paper();
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let a = s.sample(&mut rng);
            let b = s.sample(&mut rng);
            let c = s.crossover(&a, &b, &mut rng);
            assert!(s.encode(&c).is_some(), "{:?}", c);
        }
    }

    #[test]
    fn plot_coords_distinguish_prefixes_and_suffixes() {
        let s = SequenceSpace::paper();
        let a = vec![Opt::Dce, Opt::Cse, Opt::Licm, Opt::Licm, Opt::Licm];
        let b = vec![Opt::Cse, Opt::Dce, Opt::Licm, Opt::Licm, Opt::Licm];
        let c = vec![Opt::Dce, Opt::Cse, Opt::Licm, Opt::Licm, Opt::Dce];
        assert_ne!(s.plot_coords(&a).0, s.plot_coords(&b).0);
        assert_eq!(s.plot_coords(&a).0, s.plot_coords(&c).0);
        assert_ne!(s.plot_coords(&a).1, s.plot_coords(&c).1);
    }
}
