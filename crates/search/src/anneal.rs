//! Simulated annealing over optimization sequences: accepts worsening
//! moves with temperature-decaying probability, escaping the local optima
//! that trap plain hill climbing in the rugged phase-ordering landscape.
//!
//! Like hill climbing this is inherently sequential (each proposal
//! mutates the current state, which depends on the previous accept
//! decision), so it gains nothing from batching — but a
//! [`crate::CachedEvaluator`] still memoizes re-visited sequences.

use crate::{Evaluator, SearchResult, SequenceSpace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Annealing schedule parameters.
#[derive(Debug, Clone)]
pub struct AnnealConfig {
    /// Initial temperature as a fraction of the first-seen cost.
    pub t0_frac: f64,
    /// Geometric cooling factor per evaluation.
    pub cooling: f64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            t0_frac: 0.05,
            cooling: 0.97,
        }
    }
}

/// Run simulated annealing for `budget` evaluations.
pub fn run(
    space: &SequenceSpace,
    eval: &dyn Evaluator,
    budget: usize,
    cfg: &AnnealConfig,
    seed: u64,
) -> SearchResult {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut result = SearchResult::new();
    if budget == 0 {
        return result;
    }
    let mut current = space.sample(&mut rng);
    let mut current_cost = eval.evaluate(&current);
    result.observe(&current, current_cost);
    let mut temp = (current_cost * cfg.t0_frac).max(1e-9);

    for _ in 1..budget {
        let cand = space.mutate(&current, &mut rng);
        let cost = eval.evaluate(&cand);
        result.observe(&cand, cost);
        let accept = cost <= current_cost || {
            let delta = cost - current_cost;
            rng.gen_bool((-delta / temp).exp().clamp(0.0, 1.0))
        };
        if accept {
            current = cand;
            current_cost = cost;
        }
        temp = (temp * cfg.cooling).max(1e-9);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_cost;
    use crate::{hillclimb, random};
    use ic_passes::Opt;

    fn space() -> SequenceSpace {
        SequenceSpace::new(&Opt::PAPER_13, 5)
    }

    #[test]
    fn budget_and_monotonicity() {
        let r = run(&space(), &synthetic_cost, 64, &AnnealConfig::default(), 1);
        assert_eq!(r.evaluations(), 64);
        for w in r.best_so_far.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn competitive_with_other_strategies() {
        let mut sa = 0.0;
        let mut rnd = 0.0;
        let mut hc = 0.0;
        for seed in 0..8 {
            sa += run(
                &space(),
                &synthetic_cost,
                100,
                &AnnealConfig::default(),
                seed,
            )
            .best_cost;
            rnd += random::run(&space(), &synthetic_cost, 100, seed).best_cost;
            hc += hillclimb::run(&space(), &synthetic_cost, 100, 10, seed).best_cost;
        }
        assert!(sa <= rnd * 1.02, "sa {sa} vs random {rnd}");
        assert!(sa <= hc * 1.05, "sa {sa} vs hillclimb {hc}");
    }

    #[test]
    fn reproducible() {
        let a = run(&space(), &synthetic_cost, 40, &AnnealConfig::default(), 9);
        let b = run(&space(), &synthetic_cost, 40, &AnnealConfig::default(), 9);
        assert_eq!(a.best_so_far, b.best_so_far);
    }

    #[test]
    fn zero_budget_is_safe() {
        let r = run(&space(), &synthetic_cost, 0, &AnnealConfig::default(), 1);
        assert_eq!(r.evaluations(), 0);
        assert!(r.best_cost.is_infinite());
    }
}
