//! # ic-search — the optimization-sequence space and search strategies
//!
//! Implements the machinery behind the paper's Fig. 2:
//!
//! * [`space::SequenceSpace`] — length-L sequences over a set of
//!   optimizations with the unroll-at-most-once constraint (footnote 1 of
//!   the paper), with dense indexing so the space can be enumerated,
//!   sampled, and plotted in the paper's (prefix, suffix) coordinates;
//! * [`exhaustive`] — full (rayon-parallel) enumeration, the ground truth
//!   for "within 5% of optimum" plots;
//! * [`random`] — uniform random search (the RANDOM baseline, averaged
//!   over independent trials);
//! * [`hillclimb`] — first-improvement local search with restarts;
//! * [`genetic`] — a Cooper-style GA over sequences;
//! * [`focused`] — model-guided search (the FOCUSSED line): a probability
//!   model fitted on *good sequences from other programs* proposes
//!   candidates (IID per-position or first-order Markov, à la Agakov et
//!   al. CGO'06).
//!
//! Strategies see programs only through the [`Evaluator`] trait (cost =
//! simulated cycles), so they are testable against synthetic landscapes.
//!
//! ## The evaluation engine
//!
//! Raw evaluations (compile + simulate) dominate search wall-clock, so
//! every strategy runs on top of a two-part engine:
//!
//! * [`cache::CachedEvaluator`] — a concurrent, transparent memo table
//!   in front of any evaluator, keyed by dense sequence index, with
//!   hit/miss/throughput stats and snapshot/warm persistence hooks;
//! * [`batch::BatchEvaluator`] — order-stable rayon fan-out of candidate
//!   batches, available on every evaluator via a blanket impl.
//!
//! The batched strategies (`random`, `focused`, `genetic`, `exhaustive`)
//! draw their candidates *before* evaluating, so batching never changes
//! the RNG stream: batched, cached, and plain sequential runs produce
//! bit-identical trajectories. Inherently sequential strategies
//! (`hillclimb`, `anneal`) pick each candidate from the previous cost
//! and stay serial, but still benefit from memoization when handed a
//! [`CachedEvaluator`].

pub mod anneal;
pub mod batch;
pub mod cache;
pub mod exhaustive;
pub mod focused;
pub mod genetic;
pub mod hillclimb;
pub mod obs;
pub mod random;
pub mod space;

pub use batch::BatchEvaluator;
pub use cache::{CacheStats, CachedEvaluator};
pub use obs::ObservedEvaluator;
pub use space::SequenceSpace;

use ic_passes::Opt;

/// Cost oracle for a sequence (lower is better; typically simulated
/// cycles). Must be `Sync` so exhaustive search can fan out with rayon.
pub trait Evaluator: Sync {
    /// Cost of compiling with `seq` and running the result.
    fn evaluate(&self, seq: &[Opt]) -> f64;
}

impl<F: Fn(&[Opt]) -> f64 + Sync> Evaluator for F {
    fn evaluate(&self, seq: &[Opt]) -> f64 {
        self(seq)
    }
}

/// Outcome of a budgeted search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    pub best_seq: Vec<Opt>,
    pub best_cost: f64,
    /// `best_so_far[i]` = best cost after `i + 1` evaluations.
    pub best_so_far: Vec<f64>,
    /// Every evaluated `(sequence, cost)` pair in evaluation order — the
    /// "output of previous runs of pure search" the paper's knowledge
    /// base stores for model training (Sec. III-C).
    pub evaluated: Vec<(Vec<Opt>, f64)>,
}

impl SearchResult {
    /// Fold one evaluation into the running result.
    pub(crate) fn observe(&mut self, seq: &[Opt], cost: f64) {
        if cost < self.best_cost {
            self.best_cost = cost;
            self.best_seq = seq.to_vec();
        }
        self.best_so_far.push(self.best_cost);
        self.evaluated.push((seq.to_vec(), cost));
    }

    /// An empty result (no evaluations yet, `best_cost` = +∞). Public so
    /// external engines (e.g. `ic-predict`'s predict-then-verify search
    /// drivers) can build results through the same observation logic the
    /// in-crate strategies use.
    pub fn new() -> Self {
        SearchResult {
            best_seq: Vec::new(),
            best_cost: f64::INFINITY,
            best_so_far: Vec::new(),
            evaluated: Vec::new(),
        }
    }

    /// Number of evaluations performed.
    pub fn evaluations(&self) -> usize {
        self.best_so_far.len()
    }

    /// Fold a pre-evaluated batch into the result, in input order. This
    /// is the single observation path of every batched strategy —
    /// external batch engines that compute costs by other means (e.g. a
    /// learned cost model that only verifies the top-ranked candidates)
    /// call it directly, so their trajectories fold exactly like a
    /// simulate-everything run's.
    pub fn observe_batch_costs(&mut self, seqs: &[Vec<Opt>], costs: &[f64]) {
        debug_assert_eq!(seqs.len(), costs.len());
        for (seq, &cost) in seqs.iter().zip(costs) {
            self.observe(seq, cost);
        }
    }

    /// Batch-evaluate `seqs` (parallel, order-stable) and fold each
    /// outcome into the result in input order. The shared path of the
    /// batched strategies.
    pub(crate) fn observe_batch(&mut self, eval: &dyn Evaluator, seqs: &[Vec<Opt>]) {
        let costs = eval.evaluate_batch(seqs);
        self.observe_batch_costs(seqs, &costs);
    }
}

impl Default for SearchResult {
    fn default() -> Self {
        SearchResult::new()
    }
}

/// Deterministic synthetic cost landscapes. Public (not `cfg(test)`) so
/// integration tests and benches can search without a simulator.
pub mod testutil {
    use super::*;

    /// A deterministic synthetic landscape: cost depends on the sequence
    /// contents with a unique planted optimum.
    pub fn synthetic_cost(seq: &[Opt]) -> f64 {
        let mut cost = 1000.0;
        for (i, o) in seq.iter().enumerate() {
            // Reward Licm early, Schedule late, Dce anywhere.
            let pos = i as f64 / seq.len().max(1) as f64;
            cost -= match o {
                Opt::Licm => 40.0 * (1.0 - pos),
                Opt::Schedule => 40.0 * pos,
                Opt::Dce => 25.0,
                Opt::Unroll4 => 30.0,
                Opt::Unroll2 => 15.0,
                _ => 2.0,
            };
        }
        cost
    }
}
