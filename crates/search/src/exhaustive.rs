//! Exhaustive enumeration of the sequence space — the ground truth for
//! the paper's Fig. 2(a).
//!
//! # Enumeration order is a performance contract
//!
//! [`run`] visits sequences in **dense-index order**, and
//! [`SequenceSpace`] indexing is lexicographic within each region of the
//! space: the all-base block enumerates sequences as base-B digit
//! strings (most-significant position first), and each (unroll position,
//! unroll factor) block does the same over the remaining base positions.
//! Consecutive indices therefore differ in the *last* positions almost
//! always — in the paper's 250k space, two neighbouring indices share a
//! length-4 pipeline prefix 90% of the time. The prefix-tree compilation
//! cache (`ic_passes::PrefixCache`) relies on exactly this locality to
//! elide shared prefixes, so the order is load-bearing, not an accident
//! of the encoding; `lexicographic_prefix_locality` in this module's
//! tests pins it down.
//!
//! [`run_subsampled`] preserves the contract at small scale by sampling
//! *blocks* of consecutive indices (evenly spread over the space) rather
//! than isolated strided points: a strided point shares no useful prefix
//! with its neighbours, while a block of 50 consecutive sequences
//! recompiles almost nothing after its first member.

use crate::{Evaluator, SequenceSpace};
use ic_passes::Opt;
use rayon::prelude::*;

/// Consecutive indices evaluated per subsample block. Large enough that
/// the one cold (full-pipeline) compile per block is amortized away,
/// small enough that 4000 samples still spread over 80 regions of the
/// space.
const SUBSAMPLE_BLOCK: u64 = 50;

/// Cost of every sequence in the space, indexed by the space's dense
/// sequence index.
#[derive(Debug, Clone)]
pub struct ExhaustiveResult {
    pub costs: Vec<f64>,
}

impl ExhaustiveResult {
    /// Index and cost of the optimum.
    pub fn best(&self) -> (u64, f64) {
        self.costs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, &c)| (i as u64, c))
            .expect("non-empty space")
    }

    /// Indices of sequences whose cost is within `frac` of the optimum
    /// (the paper plots `frac = 0.05`).
    pub fn within_of_best(&self, frac: f64) -> Vec<u64> {
        let (_, best) = self.best();
        let cutoff = best * (1.0 + frac);
        self.costs
            .iter()
            .enumerate()
            .filter(|(_, &c)| c <= cutoff)
            .map(|(i, _)| i as u64)
            .collect()
    }
}

/// Evaluate every sequence in `space`, in parallel. Deterministic: output
/// order is index order regardless of thread scheduling, and rayon's
/// contiguous index chunks preserve the lexicographic prefix locality
/// the compilation cache feeds on.
pub fn run(space: &SequenceSpace, eval: &dyn Evaluator) -> ExhaustiveResult {
    let costs: Vec<f64> = (0..space.count())
        .into_par_iter()
        .map(|i| eval.evaluate(&space.decode(i)))
        .collect();
    ExhaustiveResult { costs }
}

/// The deterministic blocked subsample of `n` indices from `0..total`:
/// the range is split into equal segments, and each segment contributes
/// a run of consecutive indices from its start. Sorted and distinct.
pub fn blocked_indices(total: u64, n: u64) -> Vec<u64> {
    let n = n.min(total).max(1);
    let nblocks = n.div_ceil(SUBSAMPLE_BLOCK).max(1);
    let mut out = Vec::with_capacity(n as usize);
    let mut remaining = n;
    for s in 0..nblocks {
        let seg_start = s * total / nblocks;
        let seg_end = (s + 1) * total / nblocks;
        // Even share of what is left; a short segment's shortfall rolls
        // into the later shares, so exactly `n` indices come out.
        let want = remaining.div_ceil(nblocks - s);
        let take = want.min(seg_end - seg_start);
        out.extend(seg_start..seg_start + take);
        remaining -= take;
    }
    debug_assert_eq!(out.len() as u64, n);
    out
}

/// Evaluate a deterministic subsample of `n` sequences: blocks of
/// consecutive indices, evenly spread over the index range (see the
/// module docs for why blocks beat an even stride). Returns
/// `(index, sequence, cost)` triples sorted by index — used by the
/// small-scale Fig. 2(a) harness. Parallelism is over whole blocks, so
/// each block walks the compilation cache in lexicographic order no
/// matter how rayon schedules it.
pub fn run_subsampled(
    space: &SequenceSpace,
    eval: &dyn Evaluator,
    n: u64,
) -> Vec<(u64, Vec<Opt>, f64)> {
    let idxs = blocked_indices(space.count(), n);
    // Split back into the runs of consecutive indices.
    let mut blocks: Vec<&[u64]> = Vec::new();
    let mut start = 0usize;
    for i in 1..=idxs.len() {
        if i == idxs.len() || idxs[i] != idxs[i - 1] + 1 {
            blocks.push(&idxs[start..i]);
            start = i;
        }
    }
    blocks
        .into_par_iter()
        .flat_map(|block| {
            block
                .iter()
                .map(|&i| {
                    let seq = space.decode(i);
                    let c = eval.evaluate(&seq);
                    (i, seq, c)
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_cost;

    fn small_space() -> SequenceSpace {
        SequenceSpace::new(
            &[Opt::Dce, Opt::Licm, Opt::Schedule, Opt::Cse, Opt::Unroll4],
            3,
        )
    }

    #[test]
    fn covers_whole_space() {
        let s = small_space();
        let r = run(&s, &synthetic_cost);
        assert_eq!(r.costs.len() as u64, s.count());
    }

    #[test]
    fn finds_planted_optimum() {
        let s = small_space();
        let r = run(&s, &synthetic_cost);
        let (bi, bc) = r.best();
        let best_seq = s.decode(bi);
        // The synthetic landscape rewards licm-early + unroll4 + schedule-late.
        assert!(bc < 910.0, "{bc} for {:?}", best_seq);
        assert_eq!(best_seq[0], Opt::Licm);
        assert_eq!(*best_seq.last().unwrap(), Opt::Schedule);
        // Every enumerated cost >= optimum.
        assert!(r.costs.iter().all(|&c| c >= bc));
    }

    #[test]
    fn within_of_best_monotone() {
        let s = small_space();
        let r = run(&s, &synthetic_cost);
        let tight = r.within_of_best(0.01).len();
        let loose = r.within_of_best(0.10).len();
        assert!(tight >= 1);
        assert!(loose >= tight);
    }

    #[test]
    fn deterministic_across_runs() {
        let s = small_space();
        let a = run(&s, &synthetic_cost);
        let b = run(&s, &synthetic_cost);
        assert_eq!(a.costs, b.costs);
    }

    /// The performance contract: dense-index order is lexicographic
    /// within the all-base block and within every unroll block, so
    /// consecutive indices overwhelmingly share long prefixes.
    #[test]
    fn lexicographic_prefix_locality() {
        let s = SequenceSpace::new(&Opt::PAPER_13, 4);
        let alphabet = s.alphabet();
        let rank = |o: Opt| alphabet.iter().position(|&x| x == o).unwrap();
        let key = |seq: &[Opt]| seq.iter().map(|&o| rank(o)).collect::<Vec<_>>();

        // The all-base block (indices 0..10^4) is sorted lexicographically.
        let base_block: Vec<Vec<usize>> = (0..10_000u64).map(|i| key(&s.decode(i))).collect();
        assert!(base_block.windows(2).all(|w| w[0] < w[1]));

        // Each (unroll position, factor) block is sorted too.
        for block in 0..(4 * 3) {
            let start = 10_000 + block * 1_000;
            let unroll_block: Vec<Vec<usize>> =
                (start..start + 1_000).map(|i| key(&s.decode(i))).collect();
            assert!(
                unroll_block.windows(2).all(|w| w[0] < w[1]),
                "block {block}"
            );
        }

        // Quantified locality. In the all-base block, >= 85% of
        // consecutive pairs share all but the final position; blocks with
        // the unroll in the *last* slot vary their fastest digit one
        // position earlier, so across the whole space the guarantee is a
        // mean shared-prefix length within 1.5 of the maximum.
        let len = s.len();
        let base_sharing = (0..9_999u64)
            .filter(|&i| s.decode(i)[..len - 1] == s.decode(i + 1)[..len - 1])
            .count();
        assert!(base_sharing >= 8_500, "{base_sharing} of 9999");
        let shared_total: usize = (0..s.count() - 1)
            .map(|i| {
                let (a, b) = (s.decode(i), s.decode(i + 1));
                a.iter().zip(&b).take_while(|(x, y)| x == y).count()
            })
            .sum();
        let mean_shared = shared_total as f64 / (s.count() - 1) as f64;
        assert!(mean_shared >= len as f64 - 1.5, "mean shared {mean_shared}");
    }

    #[test]
    fn blocked_indices_exact_sorted_distinct() {
        for (total, n) in [
            (250_000u64, 4_000u64),
            (81, 81),
            (81, 60),
            (100, 99),
            (7, 3),
            (1, 1),
            (250_000, 250_000),
            (50, 200), // n > total clamps to total
        ] {
            let idxs = blocked_indices(total, n);
            assert_eq!(idxs.len() as u64, n.min(total).max(1), "{total}/{n}");
            assert!(idxs.windows(2).all(|w| w[0] < w[1]), "{total}/{n}");
            assert!(*idxs.last().unwrap() < total, "{total}/{n}");
        }
    }

    #[test]
    fn blocked_indices_are_runs_of_consecutive() {
        let idxs = blocked_indices(250_000, 4_000);
        let adjacent = idxs.windows(2).filter(|w| w[1] == w[0] + 1).count();
        // 80 blocks of 50: all but the 79 block boundaries are adjacent.
        assert_eq!(adjacent, idxs.len() - 80);
    }

    #[test]
    fn subsample_is_subset_and_sized() {
        let s = small_space();
        let full = run(&s, &synthetic_cost);
        let sub = run_subsampled(&s, &synthetic_cost, 20);
        assert_eq!(sub.len(), 20);
        assert!(sub.windows(2).all(|w| w[0].0 < w[1].0), "sorted by index");
        for (i, seq, c) in &sub {
            assert_eq!(s.decode(*i), *seq);
            assert_eq!(full.costs[*i as usize], *c);
        }
    }
}
