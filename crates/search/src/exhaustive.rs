//! Exhaustive enumeration of the sequence space — the ground truth for
//! the paper's Fig. 2(a).

use crate::{Evaluator, SequenceSpace};
use ic_passes::Opt;
use rayon::prelude::*;

/// Cost of every sequence in the space, indexed by the space's dense
/// sequence index.
#[derive(Debug, Clone)]
pub struct ExhaustiveResult {
    pub costs: Vec<f64>,
}

impl ExhaustiveResult {
    /// Index and cost of the optimum.
    pub fn best(&self) -> (u64, f64) {
        self.costs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, &c)| (i as u64, c))
            .expect("non-empty space")
    }

    /// Indices of sequences whose cost is within `frac` of the optimum
    /// (the paper plots `frac = 0.05`).
    pub fn within_of_best(&self, frac: f64) -> Vec<u64> {
        let (_, best) = self.best();
        let cutoff = best * (1.0 + frac);
        self.costs
            .iter()
            .enumerate()
            .filter(|(_, &c)| c <= cutoff)
            .map(|(i, _)| i as u64)
            .collect()
    }
}

/// Evaluate every sequence in `space`, in parallel. Deterministic: output
/// order is index order regardless of thread scheduling.
pub fn run(space: &SequenceSpace, eval: &dyn Evaluator) -> ExhaustiveResult {
    let costs: Vec<f64> = (0..space.count())
        .into_par_iter()
        .map(|i| eval.evaluate(&space.decode(i)))
        .collect();
    ExhaustiveResult { costs }
}

/// Evaluate a deterministic subsample of `n` sequences (evenly strided
/// over the index range). Returns `(index, sequence, cost)` triples —
/// used by the small-scale Fig. 2(a) harness.
pub fn run_subsampled(
    space: &SequenceSpace,
    eval: &dyn Evaluator,
    n: u64,
) -> Vec<(u64, Vec<Opt>, f64)> {
    let total = space.count();
    let n = n.min(total).max(1);
    let stride = total / n;
    let idxs: Vec<u64> = (0..n).map(|k| (k * stride).min(total - 1)).collect();
    idxs.into_par_iter()
        .map(|i| {
            let seq = space.decode(i);
            let c = eval.evaluate(&seq);
            (i, seq, c)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_cost;

    fn small_space() -> SequenceSpace {
        SequenceSpace::new(
            &[Opt::Dce, Opt::Licm, Opt::Schedule, Opt::Cse, Opt::Unroll4],
            3,
        )
    }

    #[test]
    fn covers_whole_space() {
        let s = small_space();
        let r = run(&s, &synthetic_cost);
        assert_eq!(r.costs.len() as u64, s.count());
    }

    #[test]
    fn finds_planted_optimum() {
        let s = small_space();
        let r = run(&s, &synthetic_cost);
        let (bi, bc) = r.best();
        let best_seq = s.decode(bi);
        // The synthetic landscape rewards licm-early + unroll4 + schedule-late.
        assert!(bc < 910.0, "{bc} for {:?}", best_seq);
        assert_eq!(best_seq[0], Opt::Licm);
        assert_eq!(*best_seq.last().unwrap(), Opt::Schedule);
        // Every enumerated cost >= optimum.
        assert!(r.costs.iter().all(|&c| c >= bc));
    }

    #[test]
    fn within_of_best_monotone() {
        let s = small_space();
        let r = run(&s, &synthetic_cost);
        let tight = r.within_of_best(0.01).len();
        let loose = r.within_of_best(0.10).len();
        assert!(tight >= 1);
        assert!(loose >= tight);
    }

    #[test]
    fn deterministic_across_runs() {
        let s = small_space();
        let a = run(&s, &synthetic_cost);
        let b = run(&s, &synthetic_cost);
        assert_eq!(a.costs, b.costs);
    }

    #[test]
    fn subsample_is_subset_and_sized() {
        let s = small_space();
        let full = run(&s, &synthetic_cost);
        let sub = run_subsampled(&s, &synthetic_cost, 20);
        assert_eq!(sub.len(), 20);
        for (i, seq, c) in &sub {
            assert_eq!(s.decode(*i), *seq);
            assert_eq!(full.costs[*i as usize], *c);
        }
    }
}
