//! First-improvement hill climbing with random restarts.
//!
//! Inherently sequential: every candidate is a mutation of the current
//! point, which depends on the previous evaluation's outcome, so there
//! is no batch to fan out. Pass a [`crate::CachedEvaluator`] to get
//! memoization when the climb re-visits sequences (common near optima
//! and across restarts).

use crate::{Evaluator, SearchResult, SequenceSpace};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Hill-climb: start from a random sequence, repeatedly try single-opt
/// mutations, move on improvement; restart from a fresh random point
/// after `patience` consecutive non-improvements. Stops at `budget`
/// evaluations.
pub fn run(
    space: &SequenceSpace,
    eval: &dyn Evaluator,
    budget: usize,
    patience: usize,
    seed: u64,
) -> SearchResult {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut result = SearchResult::new();
    let mut current = space.sample(&mut rng);
    let mut current_cost = f64::INFINITY;
    let mut stale = 0usize;
    let mut evals = 0usize;

    // Evaluate the starting point.
    if budget > 0 {
        current_cost = eval.evaluate(&current);
        result.observe(&current, current_cost);
        evals += 1;
    }

    while evals < budget {
        if stale >= patience {
            current = space.sample(&mut rng);
            current_cost = eval.evaluate(&current);
            result.observe(&current, current_cost);
            evals += 1;
            stale = 0;
            continue;
        }
        let cand = space.mutate(&current, &mut rng);
        let cost = eval.evaluate(&cand);
        result.observe(&cand, cost);
        evals += 1;
        if cost < current_cost {
            current = cand;
            current_cost = cost;
            stale = 0;
        } else {
            stale += 1;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random;
    use crate::testutil::synthetic_cost;
    use ic_passes::Opt;

    fn space() -> SequenceSpace {
        SequenceSpace::new(&Opt::PAPER_13, 5)
    }

    #[test]
    fn respects_budget_exactly() {
        let r = run(&space(), &synthetic_cost, 77, 10, 1);
        assert_eq!(r.evaluations(), 77);
    }

    #[test]
    fn beats_random_on_smooth_landscape() {
        // The synthetic landscape is position-smooth, so local search
        // should do at least as well as random for the same budget
        // (averaged over seeds).
        let mut hc_total = 0.0;
        let mut rnd_total = 0.0;
        for seed in 0..10 {
            hc_total += run(&space(), &synthetic_cost, 60, 8, seed).best_cost;
            rnd_total += random::run(&space(), &synthetic_cost, 60, seed).best_cost;
        }
        assert!(
            hc_total <= rnd_total * 1.02,
            "hillclimb {hc_total} vs random {rnd_total}"
        );
    }

    #[test]
    fn reproducible() {
        let a = run(&space(), &synthetic_cost, 40, 5, 11);
        let b = run(&space(), &synthetic_cost, 40, 5, 11);
        assert_eq!(a.best_so_far, b.best_so_far);
    }
}
