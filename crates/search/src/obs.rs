//! Search-progress instrumentation.
//!
//! [`ObservedEvaluator`] drops in front of any [`Evaluator`] (typically
//! a [`crate::CachedEvaluator`]) and streams per-evaluation progress
//! into an [`ic_obs::Registry`]:
//!
//! * counter `search.evaluations` — evaluations performed,
//! * gauge `search.best_cost` — best (lowest) cost seen so far,
//! * span `search.evaluate` — wall time per evaluation (count / total /
//!   max).
//!
//! Because every strategy funnels each candidate through
//! `Evaluator::evaluate`, wrapping the evaluator observes *every*
//! iteration of *every* strategy without touching their signatures —
//! and without perturbing them: the wrapper forwards costs bit-exactly,
//! so trajectories are identical with or without observation.

use crate::Evaluator;
use ic_obs::{Counter, Gauge, Registry, Span};
use ic_passes::Opt;

/// A transparent instrumentation wrapper around any [`Evaluator`].
pub struct ObservedEvaluator<E> {
    inner: E,
    evaluations: Counter,
    best_cost: Gauge,
    span: Span,
}

impl<E> ObservedEvaluator<E> {
    /// Wrap `inner`, recording into `registry`'s `search.*` instruments.
    ///
    /// Resets the `search.best_cost` gauge to `+∞` — each wrapper marks
    /// the start of one search run, and a stale best from a previous
    /// run must not mask this one's progress.
    pub fn new(registry: &Registry, inner: E) -> Self {
        let best_cost = registry.gauge("search.best_cost");
        best_cost.set(f64::INFINITY);
        ObservedEvaluator {
            inner,
            evaluations: registry.counter("search.evaluations"),
            best_cost,
            span: registry.span_handle("search.evaluate"),
        }
    }

    /// The wrapped evaluator.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Unwrap, keeping the recorded metrics in the registry.
    pub fn into_inner(self) -> E {
        self.inner
    }
}

impl<E: Evaluator> Evaluator for ObservedEvaluator<E> {
    fn evaluate(&self, seq: &[Opt]) -> f64 {
        let _timing = self.span.start();
        let cost = self.inner.evaluate(seq);
        self.evaluations.inc();
        self.best_cost.set_min(cost);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_cost;
    use crate::{random, SequenceSpace};

    #[test]
    fn forwards_costs_bit_exactly_and_records_progress() {
        let space = SequenceSpace::new(&Opt::PAPER_13, 5);
        let registry = Registry::new();

        let plain = random::run(&space, &synthetic_cost, 60, 11);
        let observed = random::run(
            &space,
            &ObservedEvaluator::new(&registry, synthetic_cost),
            60,
            11,
        );
        assert_eq!(observed.best_seq, plain.best_seq);
        assert_eq!(observed.best_cost.to_bits(), plain.best_cost.to_bits());
        assert_eq!(observed.best_so_far, plain.best_so_far);

        let snap = registry.snapshot();
        let evals = snap
            .counters
            .iter()
            .find(|(n, _)| n == "search.evaluations")
            .expect("counter registered");
        assert_eq!(evals.1, 60);
        let best = snap
            .gauges
            .iter()
            .find(|(n, _)| n == "search.best_cost")
            .expect("gauge registered");
        assert_eq!(best.1.to_bits(), plain.best_cost.to_bits());
        let span = snap
            .spans
            .iter()
            .find(|s| s.name == "search.evaluate")
            .expect("span registered");
        assert_eq!(span.count, 60);
    }

    #[test]
    fn new_wrapper_resets_best_cost_for_the_next_run() {
        let registry = Registry::new();
        let e1 = ObservedEvaluator::new(&registry, synthetic_cost);
        e1.evaluate(&[Opt::Dce]);
        let first_best = registry.gauge("search.best_cost").get();
        assert!(first_best.is_finite());
        let _e2 = ObservedEvaluator::new(&registry, synthetic_cost);
        assert!(registry.gauge("search.best_cost").get().is_infinite());
    }
}
