//! Order-stable parallel batch evaluation.
//!
//! Strategies that can name several candidates before needing any of
//! their costs (random, focused, GA generations, exhaustive sweeps) hand
//! the whole batch to [`BatchEvaluator::evaluate_batch`], which fans the
//! distinct sequences out over rayon and returns costs in input order.
//! Results are bit-identical to evaluating the batch sequentially —
//! parallelism never changes what a search sees, only how fast it sees
//! it. This relies on evaluators being deterministic functions of the
//! sequence, which every evaluator in this workspace is (the simulator
//! is cycle-deterministic and the synthetic landscapes are pure).
//!
//! Duplicate sequences within a batch are evaluated once and their cost
//! replicated, mirroring what a [`crate::CachedEvaluator`] would do
//! across batches; composing both gives cross-run memoization *and*
//! intra-batch dedup.
//!
//! Distinct sequences are handed to rayon in **lexicographic order** (the
//! returned costs stay in input order, and candidate *selection* never
//! sees the permutation, so RNG streams are untouched): rayon splits a
//! sorted batch into contiguous chunks, so sequences sharing a pipeline
//! prefix land on the same worker back-to-back and the prefix-tree
//! compilation cache (`ic_passes::PrefixCache`) under the evaluator can
//! elide the shared prefix instead of recompiling it per candidate.

use crate::Evaluator;
use ic_passes::Opt;
use rayon::prelude::*;
use std::collections::HashMap;

/// Batched evaluation, implemented for every [`Evaluator`] (including
/// trait objects) via a blanket impl.
pub trait BatchEvaluator: Evaluator {
    /// Cost of every sequence in `seqs`; `result[i]` is the cost of
    /// `seqs[i]`. Deterministic and order-stable regardless of thread
    /// scheduling.
    fn evaluate_batch(&self, seqs: &[Vec<Opt>]) -> Vec<f64> {
        // Dedup first: each distinct sequence is evaluated exactly once.
        let mut uniq: Vec<&Vec<Opt>> = Vec::new();
        let mut slot: HashMap<&Vec<Opt>, usize> = HashMap::new();
        let assign: Vec<usize> = seqs
            .iter()
            .map(|s| {
                *slot.entry(s).or_insert_with(|| {
                    uniq.push(s);
                    uniq.len() - 1
                })
            })
            .collect();
        // Evaluate in lexicographic order for compile-cache prefix
        // locality, then scatter costs back to first-appearance slots.
        let mut order: Vec<usize> = (0..uniq.len()).collect();
        order.sort_unstable_by(|&a, &b| uniq[a].cmp(uniq[b]));
        let sorted_costs: Vec<f64> = order
            .par_iter()
            .map(|&i| self.evaluate(uniq[i].as_slice()))
            .collect();
        let mut costs = vec![0.0; uniq.len()];
        for (&slot, cost) in order.iter().zip(sorted_costs) {
            costs[slot] = cost;
        }
        assign.into_iter().map(|i| costs[i]).collect()
    }
}

impl<E: Evaluator + ?Sized> BatchEvaluator for E {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_cost;
    use crate::{CachedEvaluator, SequenceSpace};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn space() -> SequenceSpace {
        SequenceSpace::new(&Opt::PAPER_13, 5)
    }

    #[test]
    fn matches_sequential_in_order() {
        let s = space();
        let mut rng = SmallRng::seed_from_u64(5);
        let seqs: Vec<Vec<Opt>> = (0..200).map(|_| s.sample(&mut rng)).collect();
        let batched = (synthetic_cost).evaluate_batch(&seqs);
        let sequential: Vec<f64> = seqs.iter().map(|q| synthetic_cost(q)).collect();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn duplicates_evaluated_once() {
        struct Counting(AtomicUsize);
        impl Evaluator for Counting {
            fn evaluate(&self, seq: &[Opt]) -> f64 {
                self.0.fetch_add(1, Ordering::SeqCst);
                synthetic_cost(seq)
            }
        }
        let s = space();
        let a = s.decode(17);
        let b = s.decode(93);
        let seqs = vec![a.clone(), b.clone(), a.clone(), a.clone(), b.clone()];
        let eval = Counting(AtomicUsize::new(0));
        let costs = eval.evaluate_batch(&seqs);
        assert_eq!(eval.0.load(Ordering::SeqCst), 2, "two distinct sequences");
        assert_eq!(costs[0], costs[2]);
        assert_eq!(costs[0], costs[3]);
        assert_eq!(costs[1], costs[4]);
        assert_eq!(costs[0], synthetic_cost(&a));
    }

    #[test]
    fn composes_with_cache() {
        let s = space();
        let cache = CachedEvaluator::new(s.clone(), synthetic_cost);
        let mut rng = SmallRng::seed_from_u64(11);
        let seqs: Vec<Vec<Opt>> = (0..100).map(|_| s.sample(&mut rng)).collect();
        let first = cache.evaluate_batch(&seqs);
        let misses_after_first = cache.stats().misses;
        let second = cache.evaluate_batch(&seqs);
        assert_eq!(first, second);
        assert_eq!(
            cache.stats().misses,
            misses_after_first,
            "second pass is all hits"
        );
    }

    #[test]
    fn empty_batch() {
        let costs = (synthetic_cost).evaluate_batch(&[]);
        assert!(costs.is_empty());
    }
}
