//! Quick simulator-tier throughput probe on the compile-bench workload.
//! Not a benchmark of record — `benches/compile.rs` owns the numbers in
//! BENCH_compile.json; this exists for fast iteration on the tiers.

use ic_machine::{
    simulate_decoded, simulate_fused, simulate_legacy, Counter, DecodeCache, DecodeCacheConfig,
    MachineConfig, Memory,
};
use ic_passes::apply_sequence;
use std::time::Instant;

fn main() {
    let wl = std::env::args()
        .nth(2)
        .map(|n| {
            ic_workloads::by_name(&n).unwrap_or_else(|| {
                eprintln!("known workloads:");
                for w in ic_workloads::suite() {
                    eprintln!("  {}", w.name);
                }
                panic!("unknown suite workload {n}")
            })
        })
        .unwrap_or_else(|| ic_workloads::adpcm_scaled(256, 3));
    println!("workload: {}", wl.name);
    let mut m = wl.compile();
    apply_sequence(&mut m, &ic_passes::ofast_sequence());
    let cfg = MachineConfig::vliw_c6713_like();
    let fuel = wl.fuel;

    let cache = DecodeCache::new(DecodeCacheConfig::default());
    let dec = cache.get_or_decode(&m, &cfg);
    let fused = cache.get_or_fuse(&m, &cfg);
    let s = fused.summary();
    println!(
        "program: {} micro-ops, {} blocks (avg {:.1} insts/block), {} superinstructions, {:.1}% of micro-ops fused",
        dec.num_ops(),
        s.blocks,
        s.micro_ops_lowered as f64 / s.blocks as f64,
        s.superinstructions_fused,
        s.fusion_ratio() * 100.0
    );

    let l = simulate_legacy(&m, &cfg, Memory::for_module(&m), fuel).unwrap();
    let insts = l.counters.get(Counter::TOT_INS);
    let mem_ops = l.counters.get(Counter::LD_INS) + l.counters.get(Counter::SR_INS);
    let branches = l.counters.get(Counter::BR_INS);
    println!(
        "dynamic: {} insts ({:.1}% mem, {:.1}% branch), {} cycles",
        insts,
        mem_ops as f64 * 100.0 / insts as f64,
        branches as f64 * 100.0 / insts as f64,
        l.cycles()
    );

    let reps: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(6);
    let mut best = [f64::INFINITY; 3];
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(simulate_legacy(&m, &cfg, Memory::for_module(&m), fuel).unwrap());
        best[0] = best[0].min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        std::hint::black_box(simulate_decoded(&dec, &cfg, Memory::for_module(&m), fuel).unwrap());
        best[1] = best[1].min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        std::hint::black_box(simulate_fused(&fused, &cfg, Memory::for_module(&m), fuel).unwrap());
        best[2] = best[2].min(t.elapsed().as_secs_f64());
    }
    let ips = |s: f64| insts as f64 / s / 1e6;
    println!(
        "legacy  {:7.2}M insts/s ({:.2} ns/inst)",
        ips(best[0]),
        best[0] * 1e9 / insts as f64
    );
    println!(
        "decoded {:7.2}M insts/s ({:.2} ns/inst, {:.2}x)",
        ips(best[1]),
        best[1] * 1e9 / insts as f64,
        best[0] / best[1]
    );
    println!(
        "fused   {:7.2}M insts/s ({:.2} ns/inst, {:.2}x)",
        ips(best[2]),
        best[2] * 1e9 / insts as f64,
        best[0] / best[2]
    );
}
