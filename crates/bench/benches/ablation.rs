//! Ablation benches for the design choices called out in DESIGN.md §5:
//! scheduling on/off on the VLIW config, focused-model family (IID vs
//! Markov), and the unroll-factor spread. These measure *simulated
//! cycles* of the produced code, reported via Criterion by benching the
//! evaluation (so criterion output doubles as a regression harness for
//! code quality).

use criterion::{criterion_group, criterion_main, Criterion};
use ic_core::controller::WorkloadEvaluator;
use ic_machine::MachineConfig;
use ic_passes::Opt;
use ic_search::Evaluator;

fn bench_schedule_ablation(c: &mut Criterion) {
    let cfg = MachineConfig::vliw_c6713_like();
    let w = ic_workloads::adpcm_scaled(256, 3);
    let eval = WorkloadEvaluator::new(&w, &cfg);

    // Report the code-quality numbers once, in the bench log.
    let with: Vec<Opt> = ic_passes::ofast_sequence();
    let without: Vec<Opt> = with
        .iter()
        .copied()
        .filter(|o| *o != Opt::Schedule)
        .collect();
    println!(
        "[ablation] adpcm cycles: ofast={} ofast-minus-schedule={} o0={}",
        eval.evaluate(&with),
        eval.evaluate(&without),
        eval.baseline_cycles()
    );

    let mut g = c.benchmark_group("ablation_schedule");
    g.sample_size(15);
    g.bench_function("ofast_with_schedule", |b| b.iter(|| eval.evaluate(&with)));
    g.bench_function("ofast_without_schedule", |b| {
        b.iter(|| eval.evaluate(&without))
    });
    g.finish();
}

fn bench_unroll_factors(c: &mut Criterion) {
    let cfg = MachineConfig::vliw_c6713_like();
    let w = ic_workloads::adpcm_scaled(256, 3);
    let eval = WorkloadEvaluator::new(&w, &cfg);
    for f in [Opt::Unroll2, Opt::Unroll4, Opt::Unroll8] {
        let seq = vec![f, Opt::Dce, Opt::Schedule];
        println!(
            "[ablation] adpcm {}+dce+schedule cycles = {}",
            f.name(),
            eval.evaluate(&seq)
        );
    }
    let mut g = c.benchmark_group("ablation_unroll");
    g.sample_size(15);
    for f in [Opt::Unroll2, Opt::Unroll4, Opt::Unroll8] {
        let seq = vec![f, Opt::Dce, Opt::Schedule];
        g.bench_function(f.name(), |b| b.iter(|| eval.evaluate(&seq)));
    }
    g.finish();
}

fn bench_model_families(c: &mut Criterion) {
    use ic_search::focused::{ModelKind, SequenceModel};
    use ic_search::SequenceSpace;
    let space = SequenceSpace::paper();
    let good: Vec<Vec<Opt>> = vec![
        vec![Opt::Licm, Opt::Cse, Opt::Unroll4, Opt::Dce, Opt::Schedule],
        vec![
            Opt::Inline,
            Opt::Licm,
            Opt::Unroll8,
            Opt::Dce,
            Opt::Schedule,
        ],
        vec![Opt::Licm, Opt::Dce, Opt::Unroll4, Opt::Cse, Opt::Schedule],
    ];
    let mut g = c.benchmark_group("ablation_model");
    for kind in [ModelKind::Iid, ModelKind::Markov] {
        let model = SequenceModel::fit(&space, &good, 0.25, kind);
        g.bench_function(format!("{kind:?}_fit_and_sample"), |b| {
            b.iter(|| {
                use rand::SeedableRng;
                let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
                let m = SequenceModel::fit(&space, &good, 0.25, kind);
                let mut acc = 0usize;
                for _ in 0..100 {
                    acc += m.sample(&mut rng).len();
                }
                let _ = &model;
                acc
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_schedule_ablation,
    bench_unroll_factors,
    bench_model_families
);
criterion_main!(benches);
