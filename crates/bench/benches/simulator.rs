//! Criterion micro-benchmarks of the machine simulator: interpreter
//! throughput across workload characters and machine configs, plus the
//! multicore interleaver.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ic_machine::{simulate_default, MachineConfig};

fn bench_throughput(c: &mut Criterion) {
    let cases = [
        (
            "feistel_alu",
            ic_workloads::sources::feistel(512, 6),
            10_000_000u64,
        ),
        (
            "spmv_mem",
            ic_workloads::sources::spmv(512, 6, 3),
            10_000_000,
        ),
        ("qsort_calls", ic_workloads::sources::qsort(512), 10_000_000),
    ];
    let mut g = c.benchmark_group("simulator");
    for (name, src, fuel) in cases {
        let module = ic_lang::compile(name, &src).unwrap();
        let cfg = MachineConfig::superscalar_amd_like();
        let insts = simulate_default(&module, &cfg, fuel)
            .unwrap()
            .instructions();
        g.throughput(Throughput::Elements(insts));
        g.bench_function(name, |b| {
            b.iter(|| simulate_default(&module, &cfg, fuel).unwrap())
        });
    }
    g.finish();
}

fn bench_configs(c: &mut Criterion) {
    let module = ic_lang::compile("adpcm", &ic_workloads::sources::adpcm(512, 7)).unwrap();
    let mut g = c.benchmark_group("machine_config");
    for cfg in [
        MachineConfig::test_tiny(),
        MachineConfig::vliw_c6713_like(),
        MachineConfig::superscalar_amd_like(),
    ] {
        g.bench_function(cfg.name.clone(), |b| {
            b.iter(|| simulate_default(&module, &cfg, 20_000_000).unwrap())
        });
    }
    g.finish();
}

fn bench_multicore(c: &mut Criterion) {
    use ic_core::multicore::ParallelJob;
    let job = ParallelJob {
        n: 2048,
        passes: 1,
        work_per_elem: 4,
    };
    let cfg = MachineConfig::multicore_amd_like(8);
    let mut g = c.benchmark_group("multicore");
    for cores in [1usize, 4] {
        g.bench_function(format!("cores_{cores}"), |b| {
            b.iter(|| job.measure(&cfg, cores))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_throughput, bench_configs, bench_multicore);
criterion_main!(benches);
