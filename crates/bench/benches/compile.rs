//! Compile-throughput benchmark: applying optimization sequences from
//! scratch vs through the prefix-tree compilation cache
//! (`ic_passes::PrefixCache`), over a blocked sample of the paper's
//! 250k-sequence space (the same index locality the fig2a harness and
//! the search batchers produce).
//!
//! Besides the criterion console output, this bench writes
//! `BENCH_compile.json` at the repo root with before/after throughput,
//! the measured speedup, and the passes-elided factor.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ic_passes::{apply_sequence, Opt, PrefixCache};
use ic_search::{exhaustive, SequenceSpace};
use serde::Serialize;
use std::time::Instant;

const SAMPLES: u64 = 600;

fn sample_sequences() -> Vec<Vec<Opt>> {
    let space = SequenceSpace::paper();
    exhaustive::blocked_indices(space.count(), SAMPLES)
        .into_iter()
        .map(|i| space.decode(i))
        .collect()
}

fn base_module() -> ic_ir::Module {
    ic_workloads::adpcm_scaled(256, 3).compile()
}

fn compile_all_uncached(base: &ic_ir::Module, seqs: &[Vec<Opt>]) -> usize {
    let mut total = 0usize;
    for seq in seqs {
        let mut m = base.clone();
        total += apply_sequence(&mut m, seq);
    }
    total
}

fn compile_all_cached(cache: &PrefixCache, seqs: &[Vec<Opt>]) -> usize {
    seqs.iter().map(|seq| cache.apply_cached(seq).1).sum()
}

fn bench_compile(c: &mut Criterion) {
    let base = base_module();
    let seqs = sample_sequences();
    let mut g = c.benchmark_group("compile");
    g.sample_size(10);
    g.bench_function(format!("uncached_{SAMPLES}_seqs"), |b| {
        b.iter(|| compile_all_uncached(&base, &seqs))
    });
    g.bench_function(format!("prefix_cached_{SAMPLES}_seqs"), |b| {
        b.iter_batched(
            || PrefixCache::new(base.clone()),
            |cache| compile_all_cached(&cache, &seqs),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

#[derive(Serialize)]
struct Throughput {
    seconds: f64,
    seqs_per_sec: f64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    workload: String,
    sequences: u64,
    uncached: Throughput,
    prefix_cached: Throughput,
    speedup: f64,
    passes_run: u64,
    passes_elided: u64,
    elision_factor: f64,
}

/// One measured before/after pass, written to `BENCH_compile.json` at
/// the repo root (path anchored to the crate, not the working dir).
fn emit_report(_c: &mut Criterion) {
    let base = base_module();
    let seqs = sample_sequences();
    const REPS: usize = 5;

    let start = Instant::now();
    let mut changed_uncached = 0usize;
    for _ in 0..REPS {
        changed_uncached = compile_all_uncached(&base, &seqs);
    }
    let uncached_s = start.elapsed().as_secs_f64() / REPS as f64;

    let mut changed_cached = 0usize;
    let mut cached_s = 0.0;
    let mut stats = ic_passes::CompileCacheStats::default();
    for _ in 0..REPS {
        let cache = PrefixCache::new(base.clone());
        let start = Instant::now();
        changed_cached = compile_all_cached(&cache, &seqs);
        cached_s += start.elapsed().as_secs_f64() / REPS as f64;
        stats = cache.stats();
    }
    assert_eq!(
        changed_uncached, changed_cached,
        "cached compile must be bit-identical"
    );

    let report = Report {
        bench: "compile".into(),
        workload: "adpcm_scaled(256)".into(),
        sequences: SAMPLES,
        uncached: Throughput {
            seconds: uncached_s,
            seqs_per_sec: SAMPLES as f64 / uncached_s,
        },
        prefix_cached: Throughput {
            seconds: cached_s,
            seqs_per_sec: SAMPLES as f64 / cached_s,
        },
        speedup: uncached_s / cached_s,
        passes_run: stats.passes_run,
        passes_elided: stats.passes_elided,
        elision_factor: stats.elision_factor(),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compile.json");
    std::fs::write(path, json + "\n").expect("write BENCH_compile.json");
    println!(
        "wrote BENCH_compile.json: {:.0} -> {:.0} seqs/s ({:.2}x), {:.2}x fewer pass applications",
        report.uncached.seqs_per_sec,
        report.prefix_cached.seqs_per_sec,
        report.speedup,
        report.elision_factor
    );
}

criterion_group!(benches, bench_compile, emit_report);
criterion_main!(benches);
