//! Compile-throughput benchmark: applying optimization sequences from
//! scratch vs through the prefix-tree compilation cache
//! (`ic_passes::PrefixCache`), over a blocked sample of the paper's
//! 250k-sequence space (the same index locality the fig2a harness and
//! the search batchers produce).
//!
//! Besides the criterion console output, this bench writes
//! `BENCH_compile.json` at the repo root with before/after throughput,
//! the measured speedup, the passes-elided factor, the overhead of
//! leaving per-pass profiling on (budget: <5%, gated in CI), and a
//! unified `ic_obs::Snapshot` metrics block.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ic_core::controller::WorkloadEvaluator;
use ic_core::IntelligentCompiler;
use ic_machine::{
    simulate_decoded, simulate_fused, simulate_legacy, Counter, DecodeCache, DecodeCacheConfig,
    MachineConfig, Memory,
};
use ic_passes::{apply_sequence, Opt, PrefixCache, PrefixCacheConfig};
use ic_predict::{select_and_train, PredictThenVerify, TrainingSet};
use ic_search::{exhaustive, random, CachedEvaluator, SequenceSpace};
use serde::Serialize;
use std::time::Instant;

const SAMPLES: u64 = 600;

fn sample_sequences() -> Vec<Vec<Opt>> {
    let space = SequenceSpace::paper();
    exhaustive::blocked_indices(space.count(), SAMPLES)
        .into_iter()
        .map(|i| space.decode(i))
        .collect()
}

fn base_module() -> ic_ir::Module {
    ic_workloads::adpcm_scaled(256, 3).compile()
}

fn compile_all_uncached(base: &ic_ir::Module, seqs: &[Vec<Opt>]) -> usize {
    let mut total = 0usize;
    for seq in seqs {
        let mut m = base.clone();
        total += apply_sequence(&mut m, seq);
    }
    total
}

fn compile_all_cached(cache: &PrefixCache, seqs: &[Vec<Opt>]) -> usize {
    seqs.iter().map(|seq| cache.apply_cached(seq).1).sum()
}

fn bench_compile(c: &mut Criterion) {
    let base = base_module();
    let seqs = sample_sequences();
    let mut g = c.benchmark_group("compile");
    g.sample_size(10);
    g.bench_function(format!("uncached_{SAMPLES}_seqs"), |b| {
        b.iter(|| compile_all_uncached(&base, &seqs))
    });
    g.bench_function(format!("prefix_cached_{SAMPLES}_seqs"), |b| {
        b.iter_batched(
            || PrefixCache::new(base.clone()),
            |cache| compile_all_cached(&cache, &seqs),
            BatchSize::LargeInput,
        )
    });
    g.bench_function(format!("profiled_cached_{SAMPLES}_seqs"), |b| {
        b.iter_batched(
            || {
                PrefixCache::with_profiler(
                    base.clone(),
                    PrefixCacheConfig::default(),
                    Some(ic_passes::profiler()),
                )
            },
            |cache| compile_all_cached(&cache, &seqs),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

#[derive(Serialize)]
struct Throughput {
    seconds: f64,
    seqs_per_sec: f64,
}

#[derive(Serialize)]
struct SimThroughput {
    seconds: f64,
    insts_per_sec: f64,
}

/// Simulator-tier comparison on the same compiled module: the legacy
/// tree-walking interpreter vs the pre-decoded threaded-code engine vs
/// the fused block-compiled tier (decode and block compilation amortized
/// through a [`DecodeCache`], as in production).
#[derive(Serialize)]
struct SimReport {
    workload: String,
    /// Instructions retired per run (identical on all tiers).
    insts_per_run: u64,
    /// Runs per timed batch; throughput comes from each tier's best
    /// interleaved batch, so ambient load cancels out.
    runs: u64,
    legacy: SimThroughput,
    decoded: SimThroughput,
    fused: SimThroughput,
    /// decoded insts/s over legacy insts/s. CI gates >= 1.5x hard.
    decoded_speedup: f64,
    /// fused insts/s over legacy insts/s — the headline number. CI
    /// gates >= 1.5x hard plus fused >= 0.9x decoded; see
    /// EXPERIMENTS.md "Simulator tier throughput" for why the timing
    /// model's serial dependency chain, shared by every tier, caps this
    /// ratio near the decoded tier's.
    fused_speedup: f64,
    decode_cache: ic_obs::DecodeCacheStats,
    fused_tier: ic_obs::FusedTierStats,
}

/// Per-tier simulated-instruction throughput over ~`runs` evaluations of
/// `m` per tier (first decode/compile memoized, as in production
/// search), timed as interleaved best-of batches.
fn measure_sim(m: &ic_ir::Module, cfg: &MachineConfig, fuel: u64, runs: u64) -> SimReport {
    let run_legacy = || simulate_legacy(m, cfg, Memory::for_module(m), fuel).expect("legacy run");
    let cache = DecodeCache::new(DecodeCacheConfig::default());
    let run_decoded = || {
        let prog = cache.get_or_decode(m, cfg);
        simulate_decoded(&prog, cfg, Memory::for_module(m), fuel).expect("decoded run")
    };
    let run_fused = || {
        let prog = cache.get_or_fuse(m, cfg);
        simulate_fused(&prog, cfg, Memory::for_module(m), fuel).expect("fused run")
    };
    // Tiers must agree bit-for-bit before a throughput claim means
    // anything (the differential tests pin this; re-checked here).
    let l = run_legacy();
    let d = run_decoded();
    let f = run_fused();
    assert_eq!(l.ret, d.ret, "decoded disagrees on return value");
    assert_eq!(l.counters, d.counters, "decoded disagrees on counters");
    assert_eq!(l.ret, f.ret, "fused disagrees on return value");
    assert_eq!(l.counters, f.counters, "fused disagrees on counters");
    let insts_per_run = l.counters.get(Counter::TOT_INS);

    // Interleaved best-of: CI machines are noisy neighbours, so a plain
    // mean of N runs swings wildly with ambient load. Alternate small
    // batches of the tiers and keep each tier's *fastest* batch — load
    // spikes hit every tier alike and the minima converge to the
    // machines' true throughput.
    // Plenty of batches: host frequency steps last long enough that a
    // handful of rounds can strand one tier entirely inside a slow
    // window, skewing the ratios. Batches are ~2 ms each, so 32 rounds
    // keep the whole measurement under a second while giving every tier
    // many shots at a quiet window.
    let (batches, per_batch) = (runs.div_ceil(4).max(32), 4u64);
    let mut legacy_s = f64::INFINITY;
    let mut decoded_s = f64::INFINITY;
    let mut fused_s = f64::INFINITY;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..per_batch {
            std::hint::black_box(run_legacy());
        }
        legacy_s = legacy_s.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        for _ in 0..per_batch {
            std::hint::black_box(run_decoded());
        }
        decoded_s = decoded_s.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        for _ in 0..per_batch {
            std::hint::black_box(run_fused());
        }
        fused_s = fused_s.min(start.elapsed().as_secs_f64());
    }

    let batch_insts = (insts_per_run * per_batch) as f64;
    let legacy_ips = batch_insts / legacy_s;
    let decoded_ips = batch_insts / decoded_s;
    let fused_ips = batch_insts / fused_s;
    SimReport {
        workload: "adpcm_scaled(256)".into(),
        insts_per_run,
        runs: per_batch,
        legacy: SimThroughput {
            seconds: legacy_s,
            insts_per_sec: legacy_ips,
        },
        decoded: SimThroughput {
            seconds: decoded_s,
            insts_per_sec: decoded_ips,
        },
        fused: SimThroughput {
            seconds: fused_s,
            insts_per_sec: fused_ips,
        },
        decoded_speedup: decoded_ips / legacy_ips,
        fused_speedup: fused_ips / legacy_ips,
        decode_cache: cache.stats(),
        fused_tier: cache.fused_stats(),
    }
}

/// Predict-then-verify vs a plain cached search, identical budget and
/// seed on cold caches. The cycles model trains on *other* suite
/// programs — adpcm stays out of the corpus, so this measures transfer.
#[derive(Serialize)]
struct PredictReport {
    workload: String,
    budget: u64,
    verify_fraction: f64,
    /// Winning model family from leave-one-program-out selection.
    model: String,
    training_rows: u64,
    /// Mean held-out Spearman from model selection.
    spearman: f64,
    /// Raw simulations the plain cached search issued (cold cache).
    baseline_simulations: u64,
    /// Raw simulations the predict-then-verify search issued.
    verified: u64,
    /// Candidates answered from the model instead of the simulator.
    predicted: u64,
    candidates: u64,
    /// `(verified + predicted) / verified` — CI gates >= 3.0.
    savings_factor: f64,
    baseline_best_cycles: f64,
    predicted_best_cycles: f64,
    /// predicted best over baseline best — CI gates <= 1.05 (the
    /// predicted search must land within noise of simulate-everything).
    best_cost_ratio: f64,
}

/// Train a cycles model on a handful of non-adpcm suite programs, then
/// race predict-then-verify against the plain cached evaluator on
/// adpcm with the same seed and budget.
fn measure_predict(seed: u64) -> (PredictReport, ic_obs::PredictStats) {
    let cfg = MachineConfig::vliw_c6713_like();
    let space = SequenceSpace::paper();
    let verify_fraction = 0.25;
    let budget = 80usize;

    let mut ic = IntelligentCompiler::new(cfg.clone());
    for w in ic_bench::bench_suite(ic_bench::Scale::Small)
        .into_iter()
        .filter(|w| w.name != "adpcm")
        .take(6)
    {
        ic.characterize_program(&w);
        ic.populate_kb_search(&w, 40, seed);
    }
    let ts = TrainingSet::assemble_for_machine(&ic.kb, &space, &cfg.name);
    let tm = select_and_train(&ts, seed).expect("bench corpus trains a model");
    let (model_name, training_rows, spearman) = (tm.model.name(), tm.rows, tm.spearman);

    let workload = ic_workloads::adpcm_scaled(256, 3);
    ic.characterize_program(&workload);
    let feats = ic
        .kb
        .programs
        .iter()
        .find(|p| p.program == workload.name)
        .map(|p| p.features.clone())
        .unwrap_or_default();

    let baseline_eval =
        CachedEvaluator::new(space.clone(), WorkloadEvaluator::new(&workload, &cfg));
    let baseline = random::run(&space, &baseline_eval, budget, seed);
    let baseline_simulations = baseline_eval.stats().misses;

    let eval = CachedEvaluator::new(space.clone(), WorkloadEvaluator::new(&workload, &cfg));
    let ptv = PredictThenVerify::new(&eval, feats, Some(tm), verify_fraction);
    let predicted = ic_predict::run_random(&space, &ptv, budget, seed);
    let ps = ptv.stats();

    let report = PredictReport {
        workload: workload.name.clone(),
        budget: budget as u64,
        verify_fraction,
        model: model_name.into(),
        training_rows,
        spearman,
        baseline_simulations,
        verified: ps.verified,
        predicted: ps.predicted,
        candidates: ps.candidates,
        savings_factor: ps.savings_factor(),
        baseline_best_cycles: baseline.best_cost,
        predicted_best_cycles: predicted.best_cost,
        best_cost_ratio: predicted.best_cost / baseline.best_cost,
    };
    (report, ps)
}

#[derive(Serialize)]
struct Report {
    bench: String,
    workload: String,
    sequences: u64,
    uncached: Throughput,
    prefix_cached: Throughput,
    speedup: f64,
    passes_run: u64,
    passes_elided: u64,
    elision_factor: f64,
    /// Same cached run with the per-pass profiler attached.
    profiled: Throughput,
    /// Wall-time cost of leaving profiling on, in percent of the
    /// unprofiled cached run (min-of-reps on both sides; CI gates <5%).
    profiling_overhead_pct: f64,
    /// Simulated-instruction throughput: legacy interpreter vs the
    /// pre-decoded threaded-code engine vs the fused block-compiled
    /// tier (CI gates both speedups).
    sim: SimReport,
    /// Predict-then-verify search vs plain cached search (CI gates
    /// savings_factor >= 3.0 and best_cost_ratio <= 1.05).
    predict: PredictReport,
    /// The unified observability snapshot for the profiled run — the
    /// same schema `icc --metrics-json` and the daemon's
    /// `Admin(Metrics)` emit.
    metrics: ic_obs::Snapshot,
}

/// One measured before/after pass, written to `BENCH_compile.json` at
/// the repo root (path anchored to the crate, not the working dir).
fn emit_report(_c: &mut Criterion) {
    let base = base_module();
    let seqs = sample_sequences();
    const REPS: usize = 9;

    let start = Instant::now();
    let mut changed_uncached = 0usize;
    for _ in 0..REPS {
        changed_uncached = compile_all_uncached(&base, &seqs);
    }
    let uncached_s = start.elapsed().as_secs_f64() / REPS as f64;

    // Cached (unprofiled) vs cached-with-profiler, interleaved rep by
    // rep so clock-speed drift and scheduler noise hit both sides of
    // each pair equally. The overhead estimate is the *median of the
    // per-rep profiled/unprofiled ratios* — robust to a few reps
    // landing in a slow scheduling window, which min-of-reps is not.
    // The profiled result must stay bit-identical (profiling is
    // observation-only) and its cost within the <5% budget.
    let mut changed_cached = 0usize;
    let mut changed_profiled = 0usize;
    let mut cached_s = 0.0;
    let mut profiled_s = 0.0;
    let mut ratios = Vec::with_capacity(REPS);
    let mut stats = ic_passes::CompileCacheStats::default();
    let mut metrics = ic_obs::Snapshot::for_context("bench_compile");
    for rep in 0..=REPS {
        let warmup = rep == 0;

        let cache = PrefixCache::new(base.clone());
        let start = Instant::now();
        changed_cached = compile_all_cached(&cache, &seqs);
        let cached_rep_s = start.elapsed().as_secs_f64();

        let prof = ic_passes::profiler();
        let cache = PrefixCache::with_profiler(
            base.clone(),
            PrefixCacheConfig::default(),
            Some(prof.clone()),
        );
        let start = Instant::now();
        changed_profiled = compile_all_cached(&cache, &seqs);
        let profiled_rep_s = start.elapsed().as_secs_f64();

        if !warmup {
            cached_s += cached_rep_s / REPS as f64;
            profiled_s += profiled_rep_s / REPS as f64;
            ratios.push(profiled_rep_s / cached_rep_s);
            stats = cache.stats();
            metrics.compile_cache = cache.stats();
            metrics.passes = prof.rows();
        }
    }
    assert_eq!(
        changed_uncached, changed_cached,
        "cached compile must be bit-identical"
    );
    assert_eq!(
        changed_cached, changed_profiled,
        "profiled compile must be bit-identical"
    );
    ratios.sort_by(|a, b| a.total_cmp(b));
    let profiling_overhead_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;

    // Simulator-engine throughput on the -Ofast build of the same
    // workload (what a search actually simulates, sequence after
    // sequence against one warm decode cache).
    let mut opt = base.clone();
    apply_sequence(&mut opt, &ic_passes::ofast_sequence());
    let cfg = MachineConfig::vliw_c6713_like();
    let fuel = ic_workloads::adpcm_scaled(256, 3).fuel;
    let sim = measure_sim(&opt, &cfg, fuel, 25);
    metrics.sim = ic_obs::SimStats {
        decode: sim.decode_cache,
        fused: sim.fused_tier,
        sim_nanos: (sim.fused.seconds * 1e9) as u64,
        insts_simulated: sim.insts_per_run * sim.runs,
    };
    metrics.corpus = ic_workloads::corpus_stats(ic_workloads::SuiteScale::Small);

    let (predict, pstats) = measure_predict(0xf162b);
    metrics.predict = pstats;

    let report = Report {
        bench: "compile".into(),
        workload: "adpcm_scaled(256)".into(),
        sequences: SAMPLES,
        uncached: Throughput {
            seconds: uncached_s,
            seqs_per_sec: SAMPLES as f64 / uncached_s,
        },
        prefix_cached: Throughput {
            seconds: cached_s,
            seqs_per_sec: SAMPLES as f64 / cached_s,
        },
        speedup: uncached_s / cached_s,
        passes_run: stats.passes_run,
        passes_elided: stats.passes_elided,
        elision_factor: stats.elision_factor(),
        profiled: Throughput {
            seconds: profiled_s,
            seqs_per_sec: SAMPLES as f64 / profiled_s,
        },
        profiling_overhead_pct,
        sim,
        predict,
        metrics,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compile.json");
    std::fs::write(path, json + "\n").expect("write BENCH_compile.json");
    println!(
        "wrote BENCH_compile.json: {:.0} -> {:.0} seqs/s ({:.2}x), {:.2}x fewer pass applications, {:+.2}% profiling overhead",
        report.uncached.seqs_per_sec,
        report.prefix_cached.seqs_per_sec,
        report.speedup,
        report.elision_factor,
        report.profiling_overhead_pct
    );
    println!(
        "sim: legacy {:.2}M insts/s -> decoded {:.2}M insts/s ({:.2}x) -> fused {:.2}M insts/s ({:.2}x)",
        report.sim.legacy.insts_per_sec / 1e6,
        report.sim.decoded.insts_per_sec / 1e6,
        report.sim.decoded_speedup,
        report.sim.fused.insts_per_sec / 1e6,
        report.sim.fused_speedup
    );
    println!(
        "predict: {} model ({} rows, spearman {:.3}): {} verified + {} predicted \
         ({:.1}x fewer simulations), best {:.0} vs baseline {:.0} cycles ({:.3}x)",
        report.predict.model,
        report.predict.training_rows,
        report.predict.spearman,
        report.predict.verified,
        report.predict.predicted,
        report.predict.savings_factor,
        report.predict.predicted_best_cycles,
        report.predict.baseline_best_cycles,
        report.predict.best_cost_ratio
    );
}

criterion_group!(benches, bench_compile, emit_report);
criterion_main!(benches);
