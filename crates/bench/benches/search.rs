//! Criterion micro-benchmarks of the search strategies over a synthetic
//! landscape (isolates strategy overhead from simulation cost) and one
//! real end-to-end search iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use ic_core::controller::WorkloadEvaluator;
use ic_machine::MachineConfig;
use ic_passes::Opt;
use ic_search::{focused, genetic, hillclimb, random, SequenceSpace};

fn synthetic_cost(seq: &[Opt]) -> f64 {
    seq.iter()
        .enumerate()
        .map(|(i, o)| ((*o as usize * 31 + i * 7) % 97) as f64)
        .sum()
}

fn bench_strategies(c: &mut Criterion) {
    let space = SequenceSpace::paper();
    let mut g = c.benchmark_group("search_overhead");
    g.bench_function("random_100", |b| {
        b.iter(|| random::run(&space, &synthetic_cost, 100, 1))
    });
    g.bench_function("hillclimb_100", |b| {
        b.iter(|| hillclimb::run(&space, &synthetic_cost, 100, 10, 1))
    });
    g.bench_function("genetic_100", |b| {
        b.iter(|| {
            genetic::run(
                &space,
                &synthetic_cost,
                100,
                &genetic::GaConfig::default(),
                1,
            )
        })
    });
    let good: Vec<Vec<Opt>> = (0..20)
        .map(|i| {
            use rand::SeedableRng;
            let mut rng = rand::rngs::SmallRng::seed_from_u64(i);
            space.sample(&mut rng)
        })
        .collect();
    let model = focused::SequenceModel::fit(&space, &good, 0.25, focused::ModelKind::Markov);
    g.bench_function("focused_100", |b| {
        b.iter(|| focused::run(&space, &synthetic_cost, 100, &model, 1))
    });
    g.finish();
}

fn bench_real_evaluation(c: &mut Criterion) {
    let cfg = MachineConfig::vliw_c6713_like();
    let w = ic_workloads::adpcm_scaled(256, 3);
    let eval = WorkloadEvaluator::new(&w, &cfg);
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(20);
    g.bench_function("evaluate_one_sequence", |b| {
        b.iter(|| ic_search::Evaluator::evaluate(&eval, &ic_passes::ofast_sequence()))
    });
    g.finish();
}

fn bench_space_ops(c: &mut Criterion) {
    let space = SequenceSpace::paper();
    let mut g = c.benchmark_group("space");
    g.bench_function("decode_encode", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in (0..space.count()).step_by(9973) {
                let s = space.decode(i);
                acc ^= space.encode(&s).unwrap();
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_strategies,
    bench_real_evaluation,
    bench_space_ops
);
criterion_main!(benches);
