//! Criterion micro-benchmarks of the learning components: training and
//! prediction cost per learner, and mutual-information ranking.

use criterion::{criterion_group, criterion_main, Criterion};
use ic_ml::all_classifiers;

/// A deterministic synthetic classification problem.
fn dataset(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let row: Vec<f64> = (0..d)
            .map(|j| (((i * 31 + j * 17) % 101) as f64) / 101.0 + (i % 2) as f64 * 0.8)
            .collect();
        x.push(row);
        y.push(i % 2);
    }
    (x, y)
}

fn bench_training(c: &mut Criterion) {
    let (x, y) = dataset(200, 40);
    let mut g = c.benchmark_group("ml_train");
    for mk in [0usize, 1, 2, 3] {
        let name = all_classifiers()[mk].name();
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m = all_classifiers().remove(mk);
                m.fit(&x, &y, 2);
                m.predict(&x[0])
            })
        });
    }
    g.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let (x, y) = dataset(200, 40);
    let mut g = c.benchmark_group("ml_predict");
    for mk in [0usize, 1, 2, 3] {
        let mut m = all_classifiers().remove(mk);
        m.fit(&x, &y, 2);
        let name = m.name();
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for row in &x {
                    acc += m.predict(row);
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_mi(c: &mut Criterion) {
    let (x, y) = dataset(500, 40);
    c.bench_function("mi/rank_40_features", |b| {
        b.iter(|| ic_features::rank_features(&x, &y, 4))
    });
}

criterion_group!(benches, bench_training, bench_prediction, bench_mi);
criterion_main!(benches);
