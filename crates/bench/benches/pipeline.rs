//! Criterion micro-benchmarks of the compilation pipeline: frontend,
//! individual passes, and full sequences.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ic_passes::{apply_sequence, Opt};
use std::hint::black_box;

fn adpcm_source() -> String {
    ic_workloads::sources::adpcm(512, 7)
}

fn bench_frontend(c: &mut Criterion) {
    let src = adpcm_source();
    c.bench_function("frontend/compile_adpcm", |b| {
        b.iter(|| ic_lang::compile("adpcm", black_box(&src)).unwrap())
    });
}

fn bench_passes(c: &mut Criterion) {
    let module = ic_lang::compile("adpcm", &adpcm_source()).unwrap();
    let mut g = c.benchmark_group("passes");
    for opt in [
        Opt::ConstProp,
        Opt::Dce,
        Opt::Cse,
        Opt::Licm,
        Opt::Inline,
        Opt::SimplifyCfg,
        Opt::Schedule,
        Opt::Unroll4,
    ] {
        g.bench_function(opt.name(), |b| {
            b.iter_batched(
                || module.clone(),
                |mut m| {
                    opt.apply(&mut m);
                    m
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_full_sequences(c: &mut Criterion) {
    let module = ic_lang::compile("adpcm", &adpcm_source()).unwrap();
    let mut g = c.benchmark_group("sequence");
    g.bench_function("ofast", |b| {
        b.iter_batched(
            || module.clone(),
            |mut m| {
                apply_sequence(&mut m, &ic_passes::ofast_sequence());
                m
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_frontend, bench_passes, bench_full_sequences);
criterion_main!(benches);
