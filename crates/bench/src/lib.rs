//! # ic-bench — figure/table regeneration harnesses
//!
//! One binary per figure/table of the paper (see DESIGN.md §4):
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig2a` | Fig. 2(a): exhaustive sequence space, ≤5%-of-optimum scatter, model focus |
//! | `fig2b` | Fig. 2(b): RANDOM vs FOCUSSED search trajectories |
//! | `fig3`  | Fig. 3: mcf counters at -O0 relative to the suite average |
//! | `fig4`  | Fig. 4: -Ofast vs PCModel counters and speedups on mcf |
//! | `table_methodology` | Sec. II/V: per-learner LOOCV accuracy table |
//! | `dynamic_opt` | Sec. III-D: performance auditing across phases |
//! | `multicore` | Sec. III-G: learned core-count selection |
//!
//! Run with `--release`; every binary takes `--scale small|full` (default
//! small) and `--seed N`, prints a human-readable table to stdout, and is
//! deterministic for a fixed seed.
//!
//! The `benches/` directory holds Criterion micro-benchmarks of the
//! infrastructure itself plus the ablation studies listed in DESIGN.md §5.

use std::env;

/// Harness scale: `Small` finishes in seconds, `Full` reproduces the
/// paper-sized experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Small,
    Full,
}

/// Common command-line arguments for the figure binaries.
#[derive(Debug, Clone)]
pub struct Args {
    pub scale: Scale,
    pub seed: u64,
    /// Free-form extra flags (`--model markov` etc.).
    pub extra: Vec<String>,
}

impl Args {
    /// Parse `std::env::args`.
    pub fn parse() -> Args {
        let mut scale = Scale::Small;
        let mut seed = 42u64;
        let mut extra = Vec::new();
        let mut it = env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    let v = it.next().unwrap_or_default();
                    scale = match v.as_str() {
                        "full" => Scale::Full,
                        _ => Scale::Small,
                    };
                }
                "--seed" => {
                    seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(42);
                }
                other => extra.push(other.to_string()),
            }
        }
        Args { scale, seed, extra }
    }

    /// Value of `--<name> <value>` among the extra flags.
    pub fn flag(&self, name: &str) -> Option<&str> {
        let key = format!("--{name}");
        self.extra
            .iter()
            .position(|a| *a == key)
            .and_then(|i| self.extra.get(i + 1))
            .map(|s| s.as_str())
    }
}

/// Print a header banner.
pub fn banner(title: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Format a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// A fixed-width table printer.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Table with the given column widths.
    pub fn new(widths: &[usize]) -> Self {
        Table {
            widths: widths.to_vec(),
        }
    }

    /// Print one row.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (c, w) in cells.iter().zip(&self.widths) {
            line.push_str(&format!("{:<width$} ", c, width = w));
        }
        println!("{}", line.trim_end());
    }

    /// Print a separator.
    pub fn sep(&self) {
        let total: usize = self.widths.iter().sum::<usize>() + self.widths.len();
        println!("{}", "-".repeat(total));
    }
}

/// The bench-scale workload suite — the full 65-program registry
/// (20 hand-written kernels + 45 generated programs). `Small` uses the
/// registry's small scale: hand-written kernels shrunk so a single -O0
/// run is tens of milliseconds in release mode (mcf keeps its
/// cache-straddling default size: Fig. 3/4 depend on that regime) and
/// generated programs at their tiny fuzzing size.
pub fn bench_suite(scale: Scale) -> Vec<ic_workloads::Workload> {
    let s = match scale {
        Scale::Full => ic_workloads::SuiteScale::Full,
        Scale::Small => ic_workloads::SuiteScale::Small,
    };
    ic_workloads::registry_scaled(s)
        .into_iter()
        .map(|e| e.workload)
        .collect()
}

/// Corpus composition for the bench scale, ready to drop into an
/// [`ic_obs::Snapshot`].
pub fn corpus_stats(scale: Scale) -> ic_obs::CorpusStats {
    let s = match scale {
        Scale::Full => ic_workloads::SuiteScale::Full,
        Scale::Small => ic_workloads::SuiteScale::Small,
    };
    ic_workloads::corpus_stats(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_lookup() {
        let args = Args {
            scale: Scale::Small,
            seed: 1,
            extra: vec!["--model".into(), "markov".into()],
        };
        assert_eq!(args.flag("model"), Some("markov"));
        assert_eq!(args.flag("nope"), None);
    }

    #[test]
    fn bench_suite_compiles_small() {
        for w in bench_suite(Scale::Small) {
            let m = w.compile();
            assert!(m.num_insts() > 10, "{}", w.name);
        }
    }
}
