//! Fig. 3: performance-counter characterization of mcf at -O0, relative
//! to the average over the whole benchmark suite (the paper normalizes
//! against SPECFP + SPECINT + MiBench + Polyhedron and finds mcf's
//! memory counters up to ~38x the average, L2 store misses being the
//! largest outlier).

use ic_bench::{banner, bench_suite, Args, Table};
use ic_machine::{simulate_default, Counter, MachineConfig};
use rayon::prelude::*;

/// Counters shown in the paper's Fig. 3 (memory-system + branch mix).
const SHOWN: [Counter; 10] = [
    Counter::LD_INS,
    Counter::SR_INS,
    Counter::BR_INS,
    Counter::BR_MSP,
    Counter::L1_TCA,
    Counter::L1_TCM,
    Counter::L2_TCA,
    Counter::L2_TCM,
    Counter::L2_STM,
    Counter::TLB_DM,
];

fn main() {
    let args = Args::parse();
    banner("Fig 3 — mcf -O0 counters relative to the suite average (superscalar-amd-like)");

    let config = MachineConfig::superscalar_amd_like();
    let suite = bench_suite(args.scale);

    println!("profiling {} programs at -O0 ...", suite.len());
    let profiles: Vec<(String, ic_machine::PerfCounters)> = suite
        .par_iter()
        .map(|w| {
            let m = w.compile();
            let r =
                simulate_default(&m, &config, w.fuel).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            (w.name.clone(), r.counters)
        })
        .collect();

    // Per-instruction rates; suite average excludes mcf itself (the
    // paper's baseline is "a large set of benchmark suites").
    let mcf = &profiles
        .iter()
        .find(|(n, _)| n == "mcf")
        .expect("mcf profiled")
        .1;
    let rate = |c: &ic_machine::PerfCounters, ctr: Counter| c.per_instruction(ctr);

    let t = Table::new(&[10, 14, 14, 10]);
    t.sep();
    t.row(&[
        "counter".into(),
        "mcf rate".into(),
        "avg rate".into(),
        "ratio".into(),
    ]);
    t.sep();
    let mut max_ratio: (f64, Counter) = (0.0, Counter::LD_INS);
    for ctr in SHOWN {
        let avg: f64 = profiles
            .iter()
            .filter(|(n, _)| n != "mcf")
            .map(|(_, c)| rate(c, ctr))
            .sum::<f64>()
            / (profiles.len() - 1) as f64;
        let m = rate(mcf, ctr);
        let ratio = if avg > 1e-12 { m / avg } else { 0.0 };
        if ratio > max_ratio.0 {
            max_ratio = (ratio, ctr);
        }
        t.row(&[
            ctr.name().into(),
            format!("{m:.5}"),
            format!("{avg:.5}"),
            format!("{ratio:.1}x"),
        ]);
    }
    t.sep();
    println!();
    println!(
        "largest outlier: {} at {:.1}x the suite average",
        max_ratio.1.name(),
        max_ratio.0
    );
    println!(
        "mcf IPC: {:.3}   suite mean IPC: {:.3}",
        mcf.ipc(),
        profiles
            .iter()
            .filter(|(n, _)| n != "mcf")
            .map(|(_, c)| c.ipc())
            .sum::<f64>()
            / (profiles.len() - 1) as f64
    );
    println!(
        "\npaper shape check: mcf is an extreme memory outlier — store/load miss\n\
         rates are an order of magnitude (paper: up to 38x) above the average,\n\
         flagging it for cache-oriented optimization."
    );
}
