//! Fig. 4: mcf compiled with -Ofast and with the counter-driven PCModel,
//! counters shown relative to -O0.
//!
//! Paper numbers: -Ofast speeds mcf up 1.24x but leaves its cache
//! behaviour untouched; PCModel (which learned to compress 64-bit
//! pointers) cuts L1 misses ~20% and L2 accesses ~20% and reaches 2.33x
//! (1.88x over -Ofast).

use ic_bench::{banner, bench_suite, Args, Scale, Table};
use ic_core::models::PcModel;
use ic_machine::{simulate_default, Counter, MachineConfig};
use ic_passes::apply_sequence;

const SHOWN: [Counter; 8] = [
    Counter::TOT_CYC,
    Counter::TOT_INS,
    Counter::BR_MSP,
    Counter::L1_TCA,
    Counter::L1_TCM,
    Counter::L2_TCA,
    Counter::L2_TCM,
    Counter::L2_STM,
];

fn main() {
    let args = Args::parse();
    banner("Fig 4 — mcf: -Ofast vs PCModel, counters relative to -O0 (superscalar-amd-like)");

    let config = MachineConfig::superscalar_amd_like();
    let mcf = match args.scale {
        Scale::Full => ic_workloads::mcf_like(),
        Scale::Small => ic_workloads::mcf_like(),
    };

    // Train PCModel leave-mcf-out, exactly the paper's protocol.
    println!("training PCModel on the suite (mcf held out) ...");
    let suite = bench_suite(args.scale);
    let model = PcModel::train(&suite, &config, &["mcf"]);

    let module_o0 = mcf.compile();
    let r_o0 = simulate_default(&module_o0, &config, mcf.fuel).expect("O0 run");

    let (setting, pc_seq) = model.predict(&r_o0.counters);
    println!(
        "PCModel prediction for mcf: setting '{setting}' = [{}]",
        pc_seq
            .iter()
            .map(|o| o.name())
            .collect::<Vec<_>>()
            .join(" ")
    );

    let run_with = |seq: &[ic_passes::Opt]| {
        let mut m = module_o0.clone();
        apply_sequence(&mut m, seq);
        simulate_default(&m, &config, mcf.fuel).expect("optimized run")
    };
    let r_fast = run_with(&ic_passes::ofast_sequence());
    let r_pc = run_with(pc_seq);

    let t = Table::new(&[10, 16, 16]);
    t.sep();
    t.row(&["counter".into(), "FAST / O0".into(), "PCModel / O0".into()]);
    t.sep();
    for ctr in SHOWN {
        let base = r_o0.counters.get(ctr).max(1) as f64;
        t.row(&[
            ctr.name().into(),
            format!("{:.3}", r_fast.counters.get(ctr) as f64 / base),
            format!("{:.3}", r_pc.counters.get(ctr) as f64 / base),
        ]);
    }
    t.sep();

    let s_fast = r_o0.cycles() as f64 / r_fast.cycles() as f64;
    let s_pc = r_o0.cycles() as f64 / r_pc.cycles() as f64;
    println!();
    println!("speedup -Ofast  over -O0 : {s_fast:.2}x  (paper: 1.24x)");
    println!("speedup PCModel over -O0 : {s_pc:.2}x  (paper: 2.33x)");
    println!(
        "speedup PCModel over FAST: {:.2}x  (paper: 1.88x)",
        s_pc / s_fast
    );
    let red = |ctr: Counter| {
        (1.0 - r_pc.counters.get(ctr) as f64 / r_o0.counters.get(ctr).max(1) as f64) * 100.0
    };
    println!("PCModel L1 miss reduction  : {:.0}%", red(Counter::L1_TCM));
    println!("PCModel L2 access reduction: {:.0}%", red(Counter::L2_TCA));
    println!("PCModel L2 miss reduction  : {:.0}%", red(Counter::L2_TCM));
    println!("PCModel L2 store-miss redn : {:.0}%", red(Counter::L2_STM));
    println!(
        "\npaper shape check: the generic aggressive pipeline barely moves the\n\
         memory counters, while the counter-guided model picks the pointer-\n\
         compression setting and wins on misses and cycles. The capacity\n\
         effect lands at whichever level the footprint straddles: the paper's\n\
         mcf (~100 MB on a 1 MB L2) saw it as L1_TCM/L2_TCA -20%; ours\n\
         (~1.2 MB -> ~0.7 MB on the same L2 size) shows up as an L2_TCM\n\
         collapse — same mechanism, doubled effective cache capacity."
    );
}
