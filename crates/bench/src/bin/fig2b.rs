//! Fig. 2(b): RANDOM vs FOCUSSED iterative search on adpcm — how close
//! each gets to the best achievable performance per evaluation count.
//!
//! The paper's numbers: after 10 evaluations RANDOM reaches ~38% of the
//! available improvement, FOCUSSED ~86%, and RANDOM needs >80
//! evaluations to match. `--model iid|markov` selects the model family.
//! `--cache FILE` persists the evaluation cache to a knowledge-base JSON
//! file so re-runs skip already-simulated sequences.

use ic_bench::{banner, bench_suite, Args, Scale, Table};
use ic_core::controller::WorkloadEvaluator;
use ic_core::IntelligentCompiler;
use ic_kb::KnowledgeBase;
use ic_machine::MachineConfig;
use ic_predict::{select_and_train, PredictThenVerify, TrainingSet};
use ic_search::focused::ModelKind;
use ic_search::{focused, random, CachedEvaluator, SequenceSpace};
use std::path::Path;

fn main() {
    let args = Args::parse();
    banner("Fig 2(b) — RANDOM vs FOCUSSED search on adpcm (vliw-c6713-like)");

    let config = MachineConfig::vliw_c6713_like();
    let workload = match args.scale {
        Scale::Full => ic_workloads::adpcm(),
        Scale::Small => ic_workloads::adpcm_scaled(512, 12345),
    };
    let space = SequenceSpace::paper();
    let eval = CachedEvaluator::new(space.clone(), WorkloadEvaluator::new(&workload, &config));
    let cache_file = args.flag("cache").map(|s| s.to_string());
    let ctx = ic_core::context_fingerprint(&workload, &config);
    let mut cache_kb = match &cache_file {
        Some(f) if Path::new(f).exists() => {
            let kb = KnowledgeBase::load(Path::new(f)).expect("cache file parses");
            let warmed = ic_core::evalcache::warm_from_kb(&eval, &kb, &ctx);
            println!("warmed {warmed} cached evaluations from {f}");
            kb
        }
        _ => KnowledgeBase::new(),
    };
    let o0 = eval.inner().baseline_cycles() as f64;
    let budget = 100usize;
    let trials = 20usize; // the paper averages 20 random trials

    let kind = match args.flag("model") {
        Some("iid") => ModelKind::Iid,
        _ => ModelKind::Markov,
    };
    let predict_on = args.extra.iter().any(|a| a == "--predict");
    let verify_fraction: f64 = args
        .flag("verify-fraction")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);

    let corpus = ic_bench::corpus_stats(args.scale);
    println!(
        "training corpus: {} programs ({} hand-written + {} generated across {} families, {} generated insts)",
        corpus.programs, corpus.hand_written, corpus.generated, corpus.families, corpus.generated_insts
    );
    println!("training the predictive model on the other suite programs ...");
    let mut ic = IntelligentCompiler::new(config.clone());
    for w in bench_suite(args.scale) {
        if w.name == "adpcm" {
            continue;
        }
        ic.characterize_program(&w);
        // GA-driven search data: the focused model trains on the output
        // of real searches, as in Agakov et al.
        ic.populate_kb_search(&w, 60, args.seed);
    }
    // Wider neighbour pool for the 65-program corpus: the few nearest
    // programs alone may all be tiny generated kernels (see fig2a).
    let model = ic
        .focused_model(&workload, 8, 8, kind)
        .expect("kb has neighbours");

    println!(
        "running RANDOM ({trials} trials) and FOCUSSED ({trials} trials), budget {budget} ..."
    );
    let rnd = random::mean_trajectory(&space, &eval, budget, trials, args.seed);
    let mut foc = vec![0.0; budget];
    for t in 0..trials {
        let r = focused::run(
            &space,
            &eval,
            budget,
            &model,
            args.seed.wrapping_add(1000 + t as u64 * 7919),
        );
        for (a, b) in foc.iter_mut().zip(&r.best_so_far) {
            *a += b;
        }
    }
    for v in &mut foc {
        *v /= trials as f64;
    }

    // FOCUSSED with predicted pre-ranking (`--predict`): train a cycles
    // model on the other programs' accumulated search data — adpcm is
    // held out, so this doubles as a transfer test — then re-run the
    // same 20 trials through predict-then-verify on a cold cache, so
    // simulations saved are counted honestly rather than absorbed by
    // the memo the plain runs just filled.
    let predicted = if predict_on {
        let ts = TrainingSet::assemble_for_machine(&ic.kb, &space, &config.name);
        match select_and_train(&ts, args.seed) {
            None => {
                println!(
                    "predict: training set too small ({} joined rows) — skipping predicted run",
                    ts.len()
                );
                None
            }
            Some(tm) => {
                println!(
                    "predict: {} model on {} rows (held-out spearman {:.3}), \
                     verify_fraction {verify_fraction}",
                    tm.model.name(),
                    tm.rows,
                    tm.spearman
                );
                ic.characterize_program(&workload);
                let feats = ic
                    .kb
                    .programs
                    .iter()
                    .find(|p| p.program == workload.name)
                    .map(|p| p.features.clone())
                    .unwrap_or_default();
                let peval =
                    CachedEvaluator::new(space.clone(), WorkloadEvaluator::new(&workload, &config));
                let ptv = PredictThenVerify::new(&peval, feats, Some(tm), verify_fraction);
                let mut traj = vec![0.0; budget];
                for t in 0..trials {
                    let r = ic_predict::run_focused(
                        &ptv,
                        budget,
                        &model,
                        args.seed.wrapping_add(1000 + t as u64 * 7919),
                    );
                    for (a, b) in traj.iter_mut().zip(&r.best_so_far) {
                        *a += b;
                    }
                }
                for v in &mut traj {
                    *v /= trials as f64;
                }
                Some((traj, ptv.stats()))
            }
        }
    } else {
        None
    };

    // "100%" = best cost either search ever saw (the achievable optimum
    // proxy; full exhaustive ground truth is fig2a --scale full).
    let best = rnd
        .iter()
        .chain(foc.iter())
        .chain(predicted.iter().flat_map(|(p, _)| p.iter()))
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let improvement = |cost: f64| ((o0 - cost) / (o0 - best)).clamp(0.0, 1.0) * 100.0;

    let widths: &[usize] = if predicted.is_some() {
        &[8, 14, 14, 14]
    } else {
        &[8, 14, 14]
    };
    let t = Table::new(widths);
    t.sep();
    let mut header = vec!["evals".into(), "RANDOM %".into(), "FOCUSSED %".into()];
    if predicted.is_some() {
        header.push("PREDICT %".into());
    }
    t.row(&header);
    t.sep();
    let marks = [1, 2, 5, 10, 20, 50, 80, 100];
    for &m in &marks {
        let mut row = vec![
            format!("{m}"),
            format!("{:.1}", improvement(rnd[m - 1])),
            format!("{:.1}", improvement(foc[m - 1])),
        ];
        if let Some((p, _)) = &predicted {
            row.push(format!("{:.1}", improvement(p[m - 1])));
        }
        t.row(&row);
    }
    t.sep();

    let r10 = improvement(rnd[9]);
    let f10 = improvement(foc[9]);
    // First evaluation count where RANDOM reaches FOCUSSED@10.
    let crossover = rnd
        .iter()
        .position(|&c| improvement(c) >= f10)
        .map(|i| (i + 1).to_string())
        .unwrap_or_else(|| format!("> {budget}"));
    println!();
    println!("RANDOM   @10 evals : {r10:.1}% of available improvement (paper: ~38%)");
    println!("FOCUSSED @10 evals : {f10:.1}% of available improvement (paper: ~86%)");
    println!("RANDOM needs {crossover} evaluations to match FOCUSSED@10 (paper: >80)");
    println!("model family: {:?}", kind);
    if let Some((p, ps)) = &predicted {
        println!(
            "PREDICT  @10 evals : {:.1}% (FOCUSSED + predicted pre-ranking, verify {verify_fraction})",
            improvement(p[9])
        );
        println!(
            "prediction savings : {} verified + {} predicted of {} candidates \
             ({:.1}x fewer simulations); final Δ vs FOCUSSED {:+.1} pts",
            ps.verified,
            ps.predicted,
            ps.candidates,
            ps.savings_factor(),
            improvement(p[budget - 1]) - improvement(foc[budget - 1])
        );
    }

    let stats = eval.stats();
    println!();
    println!(
        "evaluation engine  : {} lookups, {} hits / {} raw simulations ({:.1}% hit rate)",
        stats.lookups(),
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
    println!(
        "raw sim throughput : {:.0} evals/s (aggregate evaluator time)",
        stats.evals_per_second()
    );
    let cstats = eval.inner().compile_stats();
    println!(
        "compile cache      : {} prefix hits / {} misses ({:.1}% hit rate), \
         {} passes run / {} elided ({:.2}x fewer pass applications)",
        cstats.hits,
        cstats.misses,
        cstats.hit_rate() * 100.0,
        cstats.passes_run,
        cstats.passes_elided,
        cstats.elision_factor()
    );
    let sim = eval.inner().sim_stats();
    println!(
        "decode cache       : {} hits / {} misses ({:.1}% hit rate), \
         {} programs / {} bytes resident",
        sim.decode.hits,
        sim.decode.misses,
        sim.decode.hit_rate() * 100.0,
        sim.decode.programs,
        sim.decode.bytes
    );
    println!(
        "fused tier         : {} hits / {} misses ({:.1}% hit rate), \
         {} blocks / {} superinstructions ({:.1}% of micro-ops fused)",
        sim.fused.hits,
        sim.fused.misses,
        sim.fused.hit_rate() * 100.0,
        sim.fused.blocks_compiled,
        sim.fused.superinstructions_fused,
        sim.fused.fusion_ratio() * 100.0
    );
    println!(
        "fused simulator    : {} insts in {:.1} ms ({:.2}M simulated insts/s)",
        sim.insts_simulated,
        sim.sim_nanos as f64 / 1e6,
        sim.insts_per_second() / 1e6
    );
    if let Some(f) = cache_file {
        let total = ic_core::evalcache::flush_to_kb(&eval, &mut cache_kb, &ctx);
        cache_kb.save(Path::new(&f)).expect("cache file writes");
        println!("persisted {total} cached evaluations to {f}");
    }
}
