//! `bench_serve` — throughput/latency benchmark for the `ic-serve`
//! daemon, in-process over a real Unix socket.
//!
//! Drives a mixed workload (fixed-sequence compiles + repeated
//! searches) from several concurrent clients, then reports requests/s
//! and p50/p95 latency, plus the warm-vs-cold raw-simulation reduction
//! the shared caches buy. Emits `BENCH_serve.json` for CI trend lines.
//!
//! ```sh
//! cargo run --release -p ic-bench --bin bench_serve [requests] [clients]
//! ```

use ic_serve::proto::Response;
use ic_serve::{Client, JobContext, ServeConfig, Server};
use std::time::Instant;

const SOURCE: &str = "\
int a[64];
int main() {
    int s = 0;
    for (int i = 0; i < 64; i = i + 1) a[i] = i * 3 + 1;
    for (int i = 0; i < 64; i = i + 1) s = s + a[i] * a[i];
    return s;
}
";

fn ctx() -> JobContext {
    JobContext {
        name: "hot".into(),
        source: SOURCE.into(),
        machine: "vliw".into(),
        fuel: 100_000_000,
        deadline_ms: 0,
    }
}

/// The i-th compile request's optimization sequence: a deterministic
/// walk over the registry so the prefix cache sees realistic overlap.
fn sequence_for(i: usize) -> Vec<String> {
    let opts = ic_passes::Opt::PAPER_13;
    (0..(i % 5))
        .map(|k| opts[(i * 7 + k * 3) % opts.len()].name().to_string())
        .collect()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

fn main() {
    let mut args = std::env::args().skip(1);
    let requests: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(400);
    let clients: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let socket = std::env::temp_dir().join(format!("ic-bench-serve-{}.sock", std::process::id()));
    let config = ServeConfig::builder()
        .socket(socket.clone())
        .queue_capacity(requests.max(64))
        .build()
        .expect("bench config validates");
    let handle = Server::spawn(config, None).expect("server spawns");

    // Cold vs warm search: the headline cache effect.
    let mut probe = Client::connect_unix(&socket).expect("connect");
    let cold = match probe.search(ctx(), "random", 60, 7).expect("search") {
        Response::Search(s) => s,
        other => panic!("expected Search, got {other:?}"),
    };
    let warm = match probe.search(ctx(), "random", 60, 7).expect("search") {
        Response::Search(s) => s,
        other => panic!("expected Search, got {other:?}"),
    };
    assert_eq!(cold.best_so_far, warm.best_so_far, "determinism violated");

    // Mixed data-plane load from concurrent clients.
    let t0 = Instant::now();
    let per_client = requests / clients.max(1);
    let threads: Vec<_> = (0..clients.max(1))
        .map(|c| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect_unix(&socket).expect("connect");
                let mut lat = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let n = c * per_client + i;
                    let t = Instant::now();
                    let resp = if n % 10 == 9 {
                        // Every tenth request re-runs the warm search.
                        client.search(ctx(), "random", 60, 7).expect("search")
                    } else {
                        client
                            .compile(ctx(), sequence_for(n), false)
                            .expect("compile")
                    };
                    lat.push(t.elapsed().as_secs_f64() * 1e3);
                    assert!(
                        matches!(resp, Response::Compile(_) | Response::Search(_)),
                        "unexpected response: {resp:?}"
                    );
                }
                lat
            })
        })
        .collect();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(requests);
    for t in threads {
        latencies_ms.extend(t.join().expect("client thread"));
    }
    let wall = t0.elapsed();

    // The unified observability snapshot, before the daemon drains —
    // the same schema `icc --metrics-json` emits locally.
    let metrics = probe.metrics().expect("admin metrics");

    handle.shutdown();
    let stats = handle.join();

    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let served = latencies_ms.len();
    let rps = served as f64 / wall.as_secs_f64().max(1e-9);
    let p50 = percentile(&latencies_ms, 0.50);
    let p95 = percentile(&latencies_ms, 0.95);
    let sims_reduction = if warm.stats.eval_misses == 0 {
        f64::INFINITY
    } else {
        cold.stats.eval_misses as f64 / warm.stats.eval_misses as f64
    };

    println!("ic-serve benchmark ({served} requests, {clients} clients)");
    println!("  wall time        : {:.2}s", wall.as_secs_f64());
    println!("  throughput       : {rps:.0} requests/s");
    println!("  latency p50      : {p50:.3}ms");
    println!("  latency p95      : {p95:.3}ms");
    println!(
        "  cold search      : {} raw simulations",
        cold.stats.eval_misses
    );
    println!(
        "  warm search      : {} raw simulations ({sims_reduction:.0}x reduction)",
        warm.stats.eval_misses
    );
    println!(
        "  server totals    : {} compiles, {} searches, eval {} hits / {} misses",
        stats.compile_requests, stats.search_requests, stats.eval_hits, stats.eval_misses
    );
    println!(
        "  metrics snapshot : {} rejected, {} cancelled, {} profiled passes, {} histograms",
        metrics.service.requests_rejected,
        metrics.service.requests_cancelled,
        metrics.passes.iter().filter(|p| p.calls > 0).count(),
        metrics.histograms.len()
    );

    // Machine-readable record for CI. `inf` is not JSON, so the
    // reduction field falls back to a large sentinel when warm ran
    // zero simulations.
    let reduction_json = if sims_reduction.is_finite() {
        sims_reduction
    } else {
        cold.stats.eval_misses as f64
    };
    let json = format!(
        "{{\"requests\":{served},\"clients\":{clients},\"wall_s\":{:.4},\"requests_per_s\":{rps:.1},\"p50_ms\":{p50:.4},\"p95_ms\":{p95:.4},\"cold_sims\":{},\"warm_sims\":{},\"sims_reduction\":{reduction_json:.1},\"eval_hits\":{},\"eval_misses\":{},\"metrics\":{}}}",
        wall.as_secs_f64(),
        cold.stats.eval_misses,
        warm.stats.eval_misses,
        stats.eval_hits,
        stats.eval_misses,
        serde_json::to_string(&metrics).expect("metrics serialize"),
    );
    std::fs::write("BENCH_serve.json", format!("{json}\n")).expect("write BENCH_serve.json");
    println!("  wrote BENCH_serve.json");
}
