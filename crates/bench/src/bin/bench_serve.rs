//! `bench_serve` — throughput/latency benchmark for the sharded
//! `ic-serve` daemon, in-process over real sockets.
//!
//! Measures the warm `compile` data plane four ways — {framed, HTTP}
//! × {closed loop, open loop} — plus the cold-vs-warm search reduction
//! the shared caches buy:
//!
//! * **closed loop**: a few connections issue strictly serial
//!   request→response round trips; per-request latency is exact, and
//!   throughput is bounded by round-trip time (this is what the
//!   pre-shard benchmark measured);
//! * **open loop**: requests are *pipelined* onto one connection on a
//!   fixed arrival schedule while a reader thread drains responses;
//!   latency includes queueing delay, and throughput reflects what the
//!   batched transport actually sustains.
//!
//! Emits `BENCH_serve.json` with one block per mode per transport, the
//! speedup against the pre-shard baseline, and the CI gate verdict
//! (≥5x baseline throughput, p99 ≤ 2ms on warm compiles).
//!
//! ```sh
//! cargo run --release -p ic-bench --bin bench_serve \
//!     [closed_requests] [open_requests] [open_rate_per_s]
//! ```

use ic_serve::proto::{envelope_json, CompileRequest, Request, Response};
use ic_serve::{Client, JobContext, ServeConfig, Server};
use std::io::{Read, Write};
use std::time::{Duration, Instant};

const SOURCE: &str = "\
int a[64];
int main() {
    int s = 0;
    for (int i = 0; i < 64; i = i + 1) a[i] = i * 3 + 1;
    for (int i = 0; i < 64; i = i + 1) s = s + a[i] * a[i];
    return s;
}
";

/// Pre-shard closed-loop measurement (PR 6 era, this machine class):
/// the ISSUE's ≥5x throughput gate is against this number.
const BASELINE_RPS: f64 = 8869.4;
const GATE_SPEEDUP: f64 = 5.0;
const GATE_P99_MS: f64 = 2.0;

fn ctx() -> JobContext {
    JobContext {
        name: "hot".into(),
        source: SOURCE.into(),
        machine: "vliw".into(),
        fuel: 100_000_000,
        deadline_ms: 0,
    }
}

/// The i-th request's optimization sequence: a small deterministic
/// rotation so the memo serves several distinct warm entries, not one.
fn sequence_for(i: usize) -> Vec<String> {
    let opts = ic_passes::Opt::PAPER_13;
    (0..(i % 4))
        .map(|k| opts[(i * 7 + k * 3) % opts.len()].name().to_string())
        .collect()
}

const VARIANTS: usize = 4;

fn compile_request(i: usize) -> Request {
    Request::Compile(CompileRequest {
        ctx: ctx(),
        sequence: sequence_for(i % VARIANTS),
        emit_ir: false,
    })
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

/// Summary of one measured mode.
struct Block {
    requests: usize,
    wall_s: f64,
    rps: f64,
    p50: f64,
    p95: f64,
    p99: f64,
}

impl Block {
    fn from_latencies(mut lat_ms: Vec<f64>, wall: Duration) -> Block {
        lat_ms.sort_by(|a, b| a.total_cmp(b));
        Block {
            requests: lat_ms.len(),
            wall_s: wall.as_secs_f64(),
            rps: lat_ms.len() as f64 / wall.as_secs_f64().max(1e-9),
            p50: percentile(&lat_ms, 0.50),
            p95: percentile(&lat_ms, 0.95),
            p99: percentile(&lat_ms, 0.99),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"requests\":{},\"wall_s\":{:.4},\"requests_per_s\":{:.1},\"p50_ms\":{:.4},\"p95_ms\":{:.4},\"p99_ms\":{:.4}}}",
            self.requests, self.wall_s, self.rps, self.p50, self.p95, self.p99
        )
    }

    fn print(&self, label: &str) {
        println!(
            "  {label:<22}: {:>8.0} req/s  p50 {:.3}ms  p95 {:.3}ms  p99 {:.3}ms  ({} reqs, {:.2}s)",
            self.rps, self.p50, self.p95, self.p99, self.requests, self.wall_s
        );
    }
}

/// One transport the raw open-loop drives: how to encode a request and
/// recognize one complete response on the byte stream.
trait Wire {
    fn encode(&self, i: usize, out: &mut Vec<u8>);
    /// Try to consume one response from `buf[*pos..]`; advance `pos`
    /// and return true, or return false if more bytes are needed.
    fn decode(&self, buf: &[u8], pos: &mut usize) -> bool;
}

struct FramedWire {
    payloads: Vec<String>,
}

impl FramedWire {
    fn new() -> FramedWire {
        FramedWire {
            payloads: (0..VARIANTS)
                .map(|i| envelope_json(&compile_request(i)))
                .collect(),
        }
    }
}

impl Wire for FramedWire {
    fn encode(&self, i: usize, out: &mut Vec<u8>) {
        let p = &self.payloads[i % VARIANTS];
        out.extend_from_slice(p.len().to_string().as_bytes());
        out.push(b'\n');
        out.extend_from_slice(p.as_bytes());
        out.push(b'\n');
    }

    fn decode(&self, buf: &[u8], pos: &mut usize) -> bool {
        let rest = &buf[*pos..];
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            return false;
        };
        let len: usize = std::str::from_utf8(&rest[..nl])
            .expect("utf8 length")
            .trim()
            .parse()
            .expect("numeric length");
        let total = nl + 1 + len + 1;
        if rest.len() < total {
            return false;
        }
        *pos += total;
        true
    }
}

struct HttpWire {
    bodies: Vec<String>,
}

impl HttpWire {
    fn new() -> HttpWire {
        HttpWire {
            bodies: (0..VARIANTS)
                .map(|i| ic_serve::http::body_for(&compile_request(i)))
                .collect(),
        }
    }
}

impl Wire for HttpWire {
    fn encode(&self, i: usize, out: &mut Vec<u8>) {
        let body = &self.bodies[i % VARIANTS];
        out.extend_from_slice(
            format!(
                "POST /v1/compile HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        );
        out.extend_from_slice(body.as_bytes());
    }

    fn decode(&self, buf: &[u8], pos: &mut usize) -> bool {
        let rest = &buf[*pos..];
        let Some(head_end) = rest.windows(4).position(|w| w == b"\r\n\r\n") else {
            return false;
        };
        let head = std::str::from_utf8(&rest[..head_end]).expect("utf8 head");
        let mut content_length = 0usize;
        for line in head.split("\r\n").skip(1) {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("numeric length");
                }
            }
        }
        let total = head_end + 4 + content_length;
        if rest.len() < total {
            return false;
        }
        *pos += total;
        true
    }
}

/// Closed loop: `conns` connections, each strictly serial round trips
/// through the public [`Client`] (per-request latency is exact).
fn closed_loop(uri: &str, conns: usize, requests: usize) -> Block {
    let per_conn = requests / conns.max(1);
    let t0 = Instant::now();
    let threads: Vec<_> = (0..conns.max(1))
        .map(|c| {
            let uri = uri.to_string();
            std::thread::spawn(move || {
                let mut client = Client::connect(&uri).expect("connect");
                let mut lat = Vec::with_capacity(per_conn);
                for i in 0..per_conn {
                    let req = compile_request(c * per_conn + i);
                    let t = Instant::now();
                    match client.request(&req).expect("round trip") {
                        Response::Compile(_) => {}
                        other => panic!("unexpected response: {other:?}"),
                    }
                    lat.push(t.elapsed().as_secs_f64() * 1e3);
                }
                lat
            })
        })
        .collect();
    let mut lat = Vec::with_capacity(requests);
    for t in threads {
        lat.extend(t.join().expect("client thread"));
    }
    Block::from_latencies(lat, t0.elapsed())
}

/// Split a stream into an owned reader half (writer half keeps `self`).
trait SplitStream: Read + Write + Send + Sized + 'static {
    type Reader: Read + Send;
    fn reader_half(&self) -> Self::Reader;
}

impl SplitStream for std::os::unix::net::UnixStream {
    type Reader = std::os::unix::net::UnixStream;
    fn reader_half(&self) -> Self::Reader {
        self.try_clone().expect("clone unix stream")
    }
}

impl SplitStream for std::net::TcpStream {
    type Reader = std::net::TcpStream;
    fn reader_half(&self) -> Self::Reader {
        self.try_clone().expect("clone tcp stream")
    }
}

/// Open loop: pipeline `requests` onto one raw connection on a fixed
/// arrival schedule (written in ~1ms slices), while this thread drains
/// responses. Latency = response seen − scheduled arrival.
fn open_loop<S: SplitStream, W: Wire>(
    mut stream: S,
    wire: &W,
    requests: usize,
    rate_per_s: f64,
) -> Block {
    let interval = Duration::from_secs_f64(1.0 / rate_per_s.max(1.0));
    let schedule: Vec<Duration> = (0..requests)
        .map(|i| Duration::from_secs_f64(interval.as_secs_f64() * i as f64))
        .collect();
    // Pre-encode the whole run, remembering where each request starts
    // so writes slice on frame boundaries.
    let mut encoded = Vec::with_capacity(requests * 256);
    let mut offsets = Vec::with_capacity(requests + 1);
    for i in 0..requests {
        offsets.push(encoded.len());
        wire.encode(i, &mut encoded);
    }
    offsets.push(encoded.len());

    let mut rstream = stream.reader_half();
    let t0 = Instant::now();
    let sched_for_writer = schedule.clone();
    let writer_thread = std::thread::spawn(move || {
        let mut sent = 0usize;
        while sent < requests {
            let now = t0.elapsed();
            let mut due = sent;
            while due < requests && sched_for_writer[due] <= now {
                due += 1;
            }
            if due == sent {
                let wait = sched_for_writer[sent].saturating_sub(now);
                std::thread::sleep(wait.min(Duration::from_millis(1)));
                continue;
            }
            stream
                .write_all(&encoded[offsets[sent]..offsets[due]])
                .expect("pipelined write");
            stream.flush().expect("flush");
            sent = due;
        }
    });

    let mut buf: Vec<u8> = Vec::with_capacity(1 << 20);
    let mut pos = 0usize;
    let mut seen = 0usize;
    let mut lat = Vec::with_capacity(requests);
    let mut chunk = [0u8; 64 * 1024];
    while seen < requests {
        while seen < requests && wire.decode(&buf, &mut pos) {
            let now = t0.elapsed();
            lat.push((now.saturating_sub(schedule[seen])).as_secs_f64() * 1e3);
            seen += 1;
        }
        if seen == requests {
            break;
        }
        if pos == buf.len() {
            buf.clear();
            pos = 0;
        }
        let n = rstream.read(&mut chunk).expect("read responses");
        assert!(n > 0, "server closed mid-benchmark after {seen} responses");
        buf.extend_from_slice(&chunk[..n]);
    }
    let wall = t0.elapsed();
    writer_thread.join().expect("writer thread");
    Block::from_latencies(lat, wall)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let closed_requests: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let open_requests: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40_000);
    let open_rate: f64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000.0);

    let socket = std::env::temp_dir().join(format!("ic-bench-serve-{}.sock", std::process::id()));
    let config = ServeConfig::builder()
        .socket(socket.clone())
        .http("127.0.0.1:0")
        .queue_capacity(1024)
        .build()
        .expect("bench config validates");
    let handle = Server::spawn(config, None).expect("server spawns");
    let http_addr = handle.http_addr.expect("http listener bound");
    let unix_uri = format!("unix://{}", socket.display());
    let http_uri = format!("http://{http_addr}");

    // Cold vs warm search: the headline cache effect, unchanged from
    // the pre-shard benchmark.
    let mut probe = Client::connect(&unix_uri).expect("connect");
    let cold = match probe.search(ctx(), "random", 60, 7).expect("search") {
        Response::Search(s) => s,
        other => panic!("expected Search, got {other:?}"),
    };
    let warm = match probe.search(ctx(), "random", 60, 7).expect("search") {
        Response::Search(s) => s,
        other => panic!("expected Search, got {other:?}"),
    };
    assert_eq!(cold.best_so_far, warm.best_so_far, "determinism violated");

    // Warm every compile variant so the measured loops hit the memo.
    for i in 0..VARIANTS {
        match probe.request(&compile_request(i)).expect("warm compile") {
            Response::Compile(_) => {}
            other => panic!("unexpected warmup response: {other:?}"),
        }
    }

    println!("ic-serve benchmark (warm compile plane)");
    let framed_closed = closed_loop(&unix_uri, 2, closed_requests);
    framed_closed.print("framed closed-loop");
    let http_closed = closed_loop(&http_uri, 2, closed_requests);
    http_closed.print("http closed-loop");
    let framed_open = open_loop(
        std::os::unix::net::UnixStream::connect(&socket).expect("connect"),
        &FramedWire::new(),
        open_requests,
        open_rate,
    );
    framed_open.print("framed open-loop");
    let http_stream = std::net::TcpStream::connect(http_addr).expect("connect http");
    http_stream.set_nodelay(true).expect("nodelay");
    let http_open = open_loop(http_stream, &HttpWire::new(), open_requests, open_rate);
    http_open.print("http open-loop");

    let metrics = probe.metrics().expect("admin metrics");
    handle.shutdown();
    let stats = handle.join();

    let best_rps = framed_open.rps.max(framed_closed.rps);
    let speedup = best_rps / BASELINE_RPS;
    // The latency gate is on warm-compile *service* latency, which the
    // closed loop measures exactly. (Open-loop latency at an offered
    // rate above capacity measures queue depth, not service time.)
    let p99 = framed_closed.p99.max(http_closed.p99);
    let gate_pass = speedup >= GATE_SPEEDUP && p99 <= GATE_P99_MS;
    let sims_reduction = if warm.stats.eval_misses == 0 {
        cold.stats.eval_misses as f64
    } else {
        cold.stats.eval_misses as f64 / warm.stats.eval_misses as f64
    };

    println!(
        "  search caches         : cold {} sims, warm {} sims ({sims_reduction:.0}x reduction)",
        cold.stats.eval_misses, warm.stats.eval_misses
    );
    println!(
        "  server totals         : {} compiles, {} searches, {} rejected",
        stats.compile_requests, stats.search_requests, stats.busy_rejections
    );
    println!(
        "  vs baseline           : {best_rps:.0} req/s = {speedup:.1}x of {BASELINE_RPS:.0} (gate ≥{GATE_SPEEDUP:.0}x, p99 {p99:.3}ms ≤ {GATE_P99_MS:.1}ms): {}",
        if gate_pass { "PASS" } else { "FAIL" }
    );

    let json = format!(
        "{{\"baseline\":{{\"requests_per_s\":{BASELINE_RPS},\"note\":\"pre-shard closed-loop, PR 6\"}},\
\"framed\":{{\"closed_loop\":{},\"open_loop\":{}}},\
\"http\":{{\"closed_loop\":{},\"open_loop\":{}}},\
\"open_loop_rate_target_per_s\":{open_rate:.0},\
\"best_requests_per_s\":{best_rps:.1},\"speedup_vs_baseline\":{speedup:.2},\
\"gate\":{{\"min_speedup\":{GATE_SPEEDUP},\"max_p99_ms\":{GATE_P99_MS},\"p99_ms\":{p99:.4},\"pass\":{gate_pass}}},\
\"cold_sims\":{},\"warm_sims\":{},\"sims_reduction\":{sims_reduction:.1},\
\"metrics\":{}}}",
        framed_closed.json(),
        framed_open.json(),
        http_closed.json(),
        http_open.json(),
        cold.stats.eval_misses,
        warm.stats.eval_misses,
        serde_json::to_string(&metrics).expect("metrics serialize"),
    );
    std::fs::write("BENCH_serve.json", format!("{json}\n")).expect("write BENCH_serve.json");
    println!("  wrote BENCH_serve.json");
}
