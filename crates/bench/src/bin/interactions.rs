//! Pass-interaction matrix (after Kulkarni et al., CGO'06 — the paper's
//! reference [34]): for each ordered pair of optimizations (A, B), how
//! often does applying A first *enable* B (B helps after A but not alone)
//! or *disable* it (B helps alone but not after A)?
//!
//! This is the empirical ground for the paper's claim that "compiler
//! phases interact with each other", which is what makes phase ordering
//! a search/learning problem in the first place.

use ic_bench::{banner, bench_suite, Args, Table};
use ic_machine::{simulate_default, MachineConfig};
use ic_passes::{apply_sequence, Opt};
use rayon::prelude::*;

/// Relative cycle gain of appending `suffix` to `prefix` on `module`.
fn gain(
    module: &ic_ir::Module,
    prefix: &[Opt],
    suffix: Opt,
    config: &MachineConfig,
    fuel: u64,
) -> Option<f64> {
    let mut before = module.clone();
    apply_sequence(&mut before, prefix);
    let b = simulate_default(&before, config, fuel).ok()?.cycles() as f64;
    let mut after = before;
    apply_sequence(&mut after, &[suffix]);
    let a = simulate_default(&after, config, fuel).ok()?.cycles() as f64;
    Some(b / a - 1.0)
}

fn main() {
    let args = Args::parse();
    banner("Pass interactions — P(B helps | after A) vs P(B helps | alone)");

    let config = MachineConfig::vliw_c6713_like();
    let suite = bench_suite(args.scale);
    let opts = [
        Opt::ConstProp,
        Opt::ConstFold,
        Opt::Cse,
        Opt::Licm,
        Opt::Inline,
        Opt::Unroll4,
        Opt::Dce,
        Opt::Schedule,
    ];
    const HELPS: f64 = 0.005;

    println!(
        "measuring {} programs x {} pairs ...",
        suite.len(),
        opts.len() * opts.len()
    );

    // For every program: gain(B | []) and gain(B | [A]).
    let per_program: Vec<(Vec<bool>, Vec<Vec<bool>>)> = suite
        .par_iter()
        .map(|w| {
            let m = w.compile();
            let alone: Vec<bool> = opts
                .iter()
                .map(|&b| gain(&m, &[], b, &config, w.fuel).unwrap_or(0.0) > HELPS)
                .collect();
            let after: Vec<Vec<bool>> = opts
                .iter()
                .map(|&a| {
                    opts.iter()
                        .map(|&b| gain(&m, &[a], b, &config, w.fuel).unwrap_or(0.0) > HELPS)
                        .collect()
                })
                .collect();
            (alone, after)
        })
        .collect();

    let n = per_program.len() as f64;
    let mut widths = vec![12usize];
    widths.extend(std::iter::repeat_n(10, opts.len()));
    let t = Table::new(&widths);
    t.sep();
    let mut header = vec!["A \\ B".to_string()];
    header.extend(opts.iter().map(|o| o.name().to_string()));
    t.row(&header);
    t.sep();

    let mut enables = 0usize;
    let mut disables = 0usize;
    for (ai, a) in opts.iter().enumerate() {
        let mut cells = vec![a.name().to_string()];
        for bi in 0..opts.len() {
            let p_alone = per_program.iter().filter(|(al, _)| al[bi]).count() as f64 / n;
            let p_after = per_program.iter().filter(|(_, af)| af[ai][bi]).count() as f64 / n;
            let delta = p_after - p_alone;
            if delta > 0.12 {
                enables += 1;
            }
            if delta < -0.12 {
                disables += 1;
            }
            cells.push(format!("{:+.2}", delta));
        }
        t.row(&cells);
    }
    t.sep();
    println!(
        "\ncell = P(B helps | after A) - P(B helps | alone), over {} programs",
        per_program.len()
    );
    println!("strong enabling interactions (delta > +0.12): {enables}");
    println!("strong disabling interactions (delta < -0.12): {disables}");
    println!(
        "\npaper shape check: the matrix is far from zero — phases enable and\n\
         disable each other, so sequence order matters (Sec. I challenge 2,\n\
         related work [34])."
    );
}
