//! Section III-G experiment: learned core-count selection on the
//! shared-L2 multicore simulator, against fixed policies.

use ic_bench::{banner, Args, Scale, Table};
use ic_core::multicore::{MulticoreTuner, ParallelJob, CORE_MENU};
use ic_machine::MachineConfig;
use rayon::prelude::*;

fn jobs(scale: Scale) -> Vec<ParallelJob> {
    let mut out = Vec::new();
    let (sizes, passes): (&[usize], &[usize]) = match scale {
        Scale::Full => (&[8, 32, 128, 512, 2048, 8192, 32768], &[1, 2, 4]),
        Scale::Small => (&[8, 32, 128, 512, 2048, 8192], &[1, 2]),
    };
    for &n in sizes {
        for &p in passes {
            for wpe in [1usize, 8] {
                out.push(ParallelJob {
                    n,
                    passes: p,
                    work_per_elem: wpe,
                });
            }
        }
    }
    out
}

fn main() {
    let args = Args::parse();
    banner("Sec III-G — multicore: learned core-count selection (shared L2)");

    let config = MachineConfig::multicore_amd_like(8);
    let all = jobs(args.scale);

    println!("measuring {} jobs x {:?} cores ...", all.len(), CORE_MENU);
    let measured: Vec<(ParallelJob, Vec<u64>)> = all
        .par_iter()
        .map(|j| {
            let makespans: Vec<u64> = CORE_MENU.iter().map(|&c| j.measure(&config, c)).collect();
            (*j, makespans)
        })
        .collect();

    let t = Table::new(&[22, 12, 12, 12, 12, 8, 10]);
    t.sep();
    t.row(&[
        "job (n/passes/work)".into(),
        "1 core".into(),
        "2 cores".into(),
        "4 cores".into(),
        "8 cores".into(),
        "best".into(),
        "predicted".into(),
    ]);
    t.sep();

    // Leave-one-out evaluation of the tuner.
    let mut regret_pred = 0.0;
    let mut regret_always8 = 0.0;
    let mut regret_always1 = 0.0;
    let mut correct = 0usize;
    for (i, (job, spans)) in measured.iter().enumerate() {
        let best_idx = spans
            .iter()
            .enumerate()
            .min_by_key(|&(_, m)| *m)
            .map(|(k, _)| k)
            .unwrap();
        // Train on every other job's measured best.
        let rows: Vec<(ParallelJob, usize)> = measured
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != i)
            .map(|(_, (j, s))| {
                let b = s.iter().enumerate().min_by_key(|&(_, m)| *m).unwrap().0;
                (*j, b)
            })
            .collect();
        let tuner = MulticoreTuner::train(&rows);
        let pred_cores = tuner.predict(job);
        let pred_idx = CORE_MENU.iter().position(|&c| c == pred_cores).unwrap();
        correct += (pred_idx == best_idx) as usize;
        let best = spans[best_idx] as f64;
        regret_pred += spans[pred_idx] as f64 / best;
        regret_always8 += spans[CORE_MENU.len() - 1] as f64 / best;
        regret_always1 += spans[0] as f64 / best;

        t.row(&[
            format!("{}/{}/{}", job.n, job.passes, job.work_per_elem),
            format!("{}", spans[0]),
            format!("{}", spans[1]),
            format!("{}", spans[2]),
            format!("{}", spans[3]),
            format!("{}", CORE_MENU[best_idx]),
            format!("{pred_cores}"),
        ]);
    }
    t.sep();
    let n = measured.len() as f64;
    println!();
    println!(
        "tuner exact-choice accuracy (leave-one-job-out): {}/{}",
        correct,
        measured.len()
    );
    println!(
        "mean slowdown vs oracle — tuner   : {:.3}x",
        regret_pred / n
    );
    println!(
        "mean slowdown vs oracle — always 8: {:.3}x",
        regret_always8 / n
    );
    println!(
        "mean slowdown vs oracle — always 1: {:.3}x",
        regret_always1 / n
    );
    println!(
        "\npaper shape check: neither fixed policy is safe — the learned selector\n\
         approaches the oracle across job sizes (Sec. III-G)."
    );
}
