//! Fig. 2(a): the optimization-sequence space of adpcm on the VLIW
//! target — scatter of points within 5% of the optimum, and the focus of
//! the learned model's predicted region.
//!
//! `--scale small` evaluates a deterministic blocked subsample of the
//! 250,000-sequence space (runs of consecutive indices, so the prefix
//! compilation cache sees the same locality as the full sweep);
//! `--scale full` enumerates all of it.

use ic_bench::{banner, bench_suite, pct, Args, Scale, Table};
use ic_core::controller::WorkloadEvaluator;
use ic_core::IntelligentCompiler;
use ic_machine::MachineConfig;
use ic_search::focused::ModelKind;
use ic_search::{exhaustive, CachedEvaluator, SequenceSpace};
use std::collections::HashSet;

fn main() {
    let args = Args::parse();
    banner("Fig 2(a) — adpcm sequence space on vliw-c6713-like (13 opts, length 5)");

    let config = MachineConfig::vliw_c6713_like();
    let workload = match args.scale {
        Scale::Full => ic_workloads::adpcm(),
        Scale::Small => ic_workloads::adpcm_scaled(512, 12345),
    };
    let space = SequenceSpace::paper();
    let eval = WorkloadEvaluator::new(&workload, &config);
    let o0 = eval.baseline_cycles() as f64;

    let samples: Vec<(u64, Vec<ic_passes::Opt>, f64)> = match args.scale {
        Scale::Full => {
            let r = exhaustive::run(&space, &eval);
            (0..space.count())
                .map(|i| (i, space.decode(i), r.costs[i as usize]))
                .collect()
        }
        Scale::Small => exhaustive::run_subsampled(&space, &eval, 4000),
    };

    let best = samples
        .iter()
        .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
        .expect("non-empty");
    let cutoff = best.2 * 1.05;
    let good: Vec<&(u64, Vec<ic_passes::Opt>, f64)> =
        samples.iter().filter(|(_, _, c)| *c <= cutoff).collect();

    println!("space size           : {}", space.count());
    println!("sequences evaluated  : {}", samples.len());
    println!("-O0 cycles           : {o0:.0}");
    println!(
        "best cycles          : {:.0}  (speedup {:.2}x)",
        best.2,
        o0 / best.2
    );
    println!(
        "best sequence        : {}",
        best.1
            .iter()
            .map(|o| o.name())
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!(
        "within 5% of optimum : {} points ({})",
        good.len(),
        pct(good.len() as f64 / samples.len() as f64)
    );

    // Scatter: how many distinct (t1 t2) prefix cells hold a good point?
    let prefix_cells: HashSet<u64> = good
        .iter()
        .map(|(_, s, _)| space.plot_coords(s).0)
        .collect();
    let all_prefix_cells: HashSet<u64> = samples
        .iter()
        .map(|(_, s, _)| space.plot_coords(s).0)
        .collect();
    println!(
        "prefix cells holding good points: {} of {} sampled ({}) — minima are scattered",
        prefix_cells.len(),
        all_prefix_cells.len(),
        pct(prefix_cells.len() as f64 / all_prefix_cells.len() as f64)
    );

    // The predicted region: a model trained on OTHER programs' search
    // data. Build a knowledge base from the rest of the suite, fit the
    // focused model leaving adpcm out, and measure how its samples
    // concentrate on the good region.
    println!();
    let corpus = ic_bench::corpus_stats(args.scale);
    println!(
        "training corpus: {} programs ({} hand-written + {} generated across {} families, {} generated insts)",
        corpus.programs, corpus.hand_written, corpus.generated, corpus.families, corpus.generated_insts
    );
    println!("building knowledge base from the other suite programs ...");
    let mut ic = IntelligentCompiler::new(config.clone());
    for w in bench_suite(args.scale) {
        if w.name == "adpcm" {
            continue;
        }
        ic.characterize_program(&w);
        // GA-driven search data: the focused model trains on the output
        // of real searches, as in Agakov et al.
        ic.populate_kb_search(&w, 60, args.seed);
    }
    // With the 65-program corpus the 3 feature-nearest programs can all
    // be tiny generated kernels whose best sequences don't transfer to
    // adpcm; widening the neighbour pool keeps real transfer donors in
    // the training set.
    let model = ic
        .focused_model(&workload, 8, 8, ModelKind::Markov)
        .expect("kb has neighbours");

    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(args.seed);
    let draws = 1000;
    let mut hits = 0usize;
    let mut contains_best_cell = false;
    let best_cell = space.plot_coords(&best.1);
    // Evaluate model draws through the memoizing engine, warmed with the
    // scatter's already-simulated costs, so the hit test is exact even
    // when the scatter was subsampled and repeated draws cost nothing.
    let cached = CachedEvaluator::new(space.clone(), eval);
    cached.warm(samples.iter().map(|(i, _, c)| (*i, *c)));
    use ic_search::Evaluator;
    for _ in 0..draws {
        let s = model.sample(&mut rng);
        let cost = cached.evaluate(&s);
        if cost <= cutoff {
            hits += 1;
        }
        if space.plot_coords(&s) == best_cell {
            contains_best_cell = true;
        }
    }
    let stats = cached.stats();
    println!(
        "model draws: {} lookups, {} raw simulations beyond the scatter ({:.1}% cache hit rate)",
        stats.lookups(),
        stats.misses,
        stats.hit_rate() * 100.0
    );
    let cstats = cached.inner().compile_stats();
    println!(
        "compile cache: {} prefix hits / {} misses ({:.1}% hit rate), \
         {} passes run, {} elided ({:.2}x fewer pass applications), \
         {} nodes / {:.1} MiB, {} evictions",
        cstats.hits,
        cstats.misses,
        cstats.hit_rate() * 100.0,
        cstats.passes_run,
        cstats.passes_elided,
        cstats.elision_factor(),
        cstats.nodes,
        cstats.bytes as f64 / (1024.0 * 1024.0),
        cstats.evictions
    );
    let p_model = hits as f64 / draws as f64;
    let p_uniform = good.len() as f64 / samples.len() as f64;
    let t = Table::new(&[34, 12]);
    t.sep();
    t.row(&["P(within 5% | uniform sample)".into(), pct(p_uniform)]);
    t.row(&["P(within 5% | model sample)".into(), pct(p_model)]);
    t.row(&[
        "model focusing factor".into(),
        format!("{:.1}x", p_model / p_uniform.max(1e-9)),
    ]);
    t.row(&[
        "model region covers optimum cell".into(),
        format!("{contains_best_cell}"),
    ]);
    t.sep();
    println!(
        "\npaper shape check: minima scattered across the space, and the model's\n\
         contours concentrate probability on the good region (factor >> 1)."
    );
}
