//! Section III-D experiment: dynamic optimization via runtime monitoring
//! and performance auditing, against every static one-version choice, on
//! a workload whose behaviour shifts phase mid-run.

use ic_bench::{banner, Args, Scale, Table};
use ic_core::dynamic::{default_versions, phased_workload, DynamicOptimizer};
use ic_machine::{simulate, MachineConfig, Memory};

fn main() {
    let args = Args::parse();
    banner("Sec III-D — dynamic optimization (phase detection + performance auditing)");

    let config = MachineConfig::superscalar_amd_like();
    // Large enough that the pointer-chase phase misses the caches and is
    // distinguishable from the ALU phase by the runtime monitor.
    let n = match args.scale {
        Scale::Full => 65536,
        Scale::Small => 16384,
    };
    let threshold: f64 = args
        .flag("threshold")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    let w = phased_workload(n);
    // Invocation schedule: an ALU phase, then a pointer-chase phase.
    let schedule: Vec<i64> = [vec![0i64; 10], vec![1i64; 10]].concat();
    println!(
        "workload: phased({n}); schedule: {} ALU invocations then {} chase invocations; \
         phase threshold {threshold} (--threshold to ablate)\n",
        10, 10
    );

    let set_phase = |ph: i64| {
        move |module: &ic_ir::Module, mem: &mut Memory| {
            let arr = module.array_by_name("phase").expect("phase");
            mem.set_i64(arr, 0, ph);
        }
    };

    // Static baselines.
    let versions = default_versions(&w);
    let t = Table::new(&[14, 16, 16, 16]);
    t.sep();
    t.row(&[
        "strategy".into(),
        "ALU cycles".into(),
        "chase cycles".into(),
        "total".into(),
    ]);
    t.sep();
    let mut best_static = u64::MAX;
    let mut worst_static = 0u64;
    for v in &versions {
        let mut alu = 0u64;
        let mut chase = 0u64;
        for &ph in &schedule {
            let mut mem = Memory::for_module(&v.module);
            set_phase(ph)(&v.module, &mut mem);
            let c = simulate(&v.module, &config, mem, w.fuel)
                .expect("run")
                .cycles();
            if ph == 0 {
                alu += c;
            } else {
                chase += c;
            }
        }
        let total = alu + chase;
        best_static = best_static.min(total);
        worst_static = worst_static.max(total);
        t.row(&[
            format!("static {}", v.name),
            format!("{alu}"),
            format!("{chase}"),
            format!("{total}"),
        ]);
    }

    // Dynamic.
    let mut dyno =
        DynamicOptimizer::with_threshold(default_versions(&w), config.clone(), w.fuel, threshold);
    let mut alu = 0u64;
    let mut chase = 0u64;
    let mut phase_changes = 0;
    let mut audits = 0;
    for &ph in &schedule {
        let o = dyno.invoke(&set_phase(ph));
        if ph == 0 {
            alu += o.cycles;
        } else {
            chase += o.cycles;
        }
        phase_changes += o.phase_change as u32;
        audits += o.auditing as u32;
    }
    let dyn_total = alu + chase;
    t.row(&[
        "DYNAMIC".into(),
        format!("{alu}"),
        format!("{chase}"),
        format!("{dyn_total}"),
    ]);
    t.sep();

    println!();
    println!("phase changes detected : {phase_changes}");
    println!("auditing invocations   : {audits}");
    println!(
        "dynamic vs best static : {:.3}x  (1.0 = matches the oracle single version)",
        dyn_total as f64 / best_static as f64
    );
    println!(
        "dynamic vs worst static: {:.3}x",
        dyn_total as f64 / worst_static as f64
    );
    println!(
        "\npaper shape check: no single static version is best for both phases;\n\
         the monitor detects the shift and the audit re-selects, so the dynamic\n\
         strategy tracks the per-phase winner (Sec. III-D, refs [36][37])."
    );
}
