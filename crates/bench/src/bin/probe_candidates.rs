//! Diagnostic: which candidate setting wins for each suite program (and
//! for size variants of the pointer-heavy kernels). Used to validate the
//! Fig. 4 training population.

use ic_core::models::{candidate_sequences, measure_program};
use ic_machine::MachineConfig;

fn main() {
    let cfg = MachineConfig::superscalar_amd_like();
    let cands = candidate_sequences();
    let mut ws = ic_bench::bench_suite(ic_bench::Scale::Small);
    ws.push(ic_workloads::Workload {
        name: "spmv-strad".into(),
        kind: ic_workloads::Kind::PointerChasing,
        source: ic_workloads::sources::spmv(8192, 16, 2),
        fuel: 80_000_000,
        meta: None,
    });
    for w in &ws {
        let row = measure_program(w, &cfg);
        println!(
            "{:12} best={:12} speedup={:.2}",
            w.name, cands[row.best_candidate].0, row.best_speedup
        );
    }
}
