//! Section II/V methodology table: leave-one-benchmark-out accuracy of
//! every learner on phrased compiler problems ("does appending opt X
//! help?"), versus the majority baseline. The paper's Section V claim is
//! that "a variety of learning algorithms all had low classification
//! error rates".
//!
//! `--features static|dynamic|both` ablates the feature set (DESIGN.md §5).

use ic_bench::{banner, bench_suite, pct, Args, Table};
use ic_core::methodology::{evaluate_learners, generate_instances, LearningProblem};
use ic_machine::MachineConfig;
use ic_ml::Dataset;
use ic_passes::Opt;
use ic_search::SequenceSpace;

/// Restrict a dataset's columns to static-only or dynamic-only program
/// features. The trailing "applied_*" prefix columns are situational, not
/// program characterization, and are kept in every variant.
fn restrict(data: &Dataset, which: &str) -> Dataset {
    let n_static = ic_features::STATIC_FEATURE_NAMES.len();
    let n_program = ic_features::combined_feature_names().len();
    let keep: Box<dyn Fn(usize) -> bool> = match which {
        "static" => Box::new(move |j| j < n_static || j >= n_program),
        "dynamic" => Box::new(move |j| j >= n_static),
        _ => return data.clone(),
    };
    let mut out = Dataset::new(
        data.feature_names
            .iter()
            .enumerate()
            .filter(|(j, _)| keep(*j))
            .map(|(_, n)| n.clone())
            .collect(),
        data.n_classes,
    );
    for i in 0..data.len() {
        let row: Vec<f64> = data.x[i]
            .iter()
            .enumerate()
            .filter(|(j, _)| keep(*j))
            .map(|(_, v)| *v)
            .collect();
        out.push(row, data.y[i], data.groups[i]);
    }
    out
}

fn main() {
    let args = Args::parse();
    let feat = args.flag("features").unwrap_or("both").to_string();
    banner(&format!(
        "Methodology table — LOOCV accuracy per learner (features: {feat})"
    ));

    let config = MachineConfig::vliw_c6713_like();
    let suite = bench_suite(args.scale);
    let space = SequenceSpace::paper();
    let problems = [
        Opt::Schedule,
        Opt::Licm,
        Opt::Unroll4,
        Opt::Dce,
        Opt::Inline,
    ];

    let t = Table::new(&[10, 10, 10, 10, 10, 10, 10, 10]);
    t.sep();
    t.row(&[
        "opt".into(),
        "baseline".into(),
        "logreg".into(),
        "knn".into(),
        "dtree".into(),
        "nbayes".into(),
        "forest".into(),
        "n".into(),
    ]);
    t.sep();
    let mut grand: Vec<f64> = vec![0.0; 5];
    let mut grand_base = 0.0;
    for opt in problems {
        let problem = LearningProblem::new(opt);
        let data = generate_instances(&problem, &suite, &config, &space, 8, args.seed);
        let data = restrict(&data, &feat);
        let (rows, baseline) = evaluate_learners(&data);
        let mut cells = vec![opt.name().to_string(), pct(baseline)];
        for (i, r) in rows.iter().enumerate() {
            cells.push(pct(r.mean_accuracy));
            grand[i] += r.mean_accuracy;
        }
        grand_base += baseline;
        cells.push(format!("{}", data.len()));
        t.row(&cells);
    }
    t.sep();
    let n = problems.len() as f64;
    let mut cells = vec!["MEAN".to_string(), pct(grand_base / n)];
    for g in &grand {
        cells.push(pct(g / n));
    }
    cells.push(String::new());
    t.row(&cells);
    t.sep();
    println!(
        "\npaper shape check: every learner should sit well above the majority\n\
         baseline and close to the others — compiler problems, properly phrased,\n\
         are not hard learning problems (Sec. V)."
    );
}
