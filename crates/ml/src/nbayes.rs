//! Gaussian naive Bayes.

use crate::Classifier;
use serde::{Deserialize, Serialize};

/// Gaussian naive Bayes classifier with per-class feature means/variances
/// and Laplace-smoothed priors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GaussianNaiveBayes {
    priors: Vec<f64>,
    means: Vec<Vec<f64>>,
    vars: Vec<Vec<f64>>,
}

impl GaussianNaiveBayes {
    fn log_likelihood(&self, class: usize, x: &[f64]) -> f64 {
        let mut ll = self.priors[class].ln();
        for ((&m, &v), &xi) in self.means[class].iter().zip(&self.vars[class]).zip(x) {
            // log N(xi; m, v)
            ll += -0.5 * ((xi - m) * (xi - m) / v + v.ln() + (2.0 * std::f64::consts::PI).ln());
        }
        ll
    }
}

impl Classifier for GaussianNaiveBayes {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) {
        let d = x.first().map_or(0, |r| r.len());
        let mut counts = vec![0usize; n_classes];
        let mut sums = vec![vec![0.0; d]; n_classes];
        for (xi, &yi) in x.iter().zip(y) {
            counts[yi] += 1;
            for (s, v) in sums[yi].iter_mut().zip(xi) {
                *s += v;
            }
        }
        self.means = (0..n_classes)
            .map(|c| {
                sums[c]
                    .iter()
                    .map(|s| s / counts[c].max(1) as f64)
                    .collect()
            })
            .collect();
        let mut sq = vec![vec![0.0; d]; n_classes];
        for (xi, &yi) in x.iter().zip(y) {
            for ((s, v), m) in sq[yi].iter_mut().zip(xi).zip(&self.means[yi]) {
                *s += (v - m) * (v - m);
            }
        }
        self.vars = (0..n_classes)
            .map(|c| {
                sq[c]
                    .iter()
                    .map(|s| (s / counts[c].max(1) as f64).max(1e-6))
                    .collect()
            })
            .collect();
        let n = x.len() as f64;
        self.priors = counts
            .iter()
            .map(|&c| (c as f64 + 1.0) / (n + n_classes as f64))
            .collect();
    }

    fn predict(&self, x: &[f64]) -> usize {
        (0..self.priors.len())
            .max_by(|&a, &b| {
                self.log_likelihood(a, x)
                    .partial_cmp(&self.log_likelihood(b, x))
                    .unwrap()
            })
            .unwrap_or(0)
    }

    fn predict_proba(&self, x: &[f64], n_classes: usize) -> Vec<f64> {
        let lls: Vec<f64> = (0..self.priors.len())
            .map(|c| self.log_likelihood(c, x))
            .collect();
        let mx = lls.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = lls.iter().map(|&l| (l - mx).exp()).collect();
        let s: f64 = exps.iter().sum::<f64>().max(1e-300);
        let mut p: Vec<f64> = exps.into_iter().map(|e| e / s).collect();
        p.resize(n_classes, 0.0);
        p
    }

    fn name(&self) -> &'static str {
        "nbayes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_gaussian_blobs() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..50 {
            let j = (i % 7) as f64 * 0.1;
            x.push(vec![0.0 + j, 0.0 - j]);
            y.push(0);
            x.push(vec![4.0 + j, 4.0 - j]);
            y.push(1);
        }
        let mut nb = GaussianNaiveBayes::default();
        nb.fit(&x, &y, 2);
        assert_eq!(nb.predict(&[0.3, 0.0]), 0);
        assert_eq!(nb.predict(&[4.3, 3.9]), 1);
    }

    #[test]
    fn priors_break_ties() {
        // Identical feature distributions, skewed class frequencies.
        let x = vec![vec![1.0]; 10];
        let y = vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let mut nb = GaussianNaiveBayes::default();
        nb.fit(&x, &y, 2);
        assert_eq!(nb.predict(&[1.0]), 0);
    }

    #[test]
    fn proba_is_normalized_and_confident_far_away() {
        let x = vec![vec![0.0], vec![0.2], vec![10.0], vec![10.2]];
        let y = vec![0, 0, 1, 1];
        let mut nb = GaussianNaiveBayes::default();
        nb.fit(&x, &y, 2);
        let p = nb.predict_proba(&[10.1], 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[1] > 0.99);
    }

    #[test]
    fn zero_variance_feature_tolerated() {
        let x = vec![
            vec![5.0, 0.0],
            vec![5.0, 1.0],
            vec![5.0, 10.0],
            vec![5.0, 11.0],
        ];
        let y = vec![0, 0, 1, 1];
        let mut nb = GaussianNaiveBayes::default();
        nb.fit(&x, &y, 2);
        assert_eq!(nb.predict(&[5.0, 0.5]), 0);
        assert_eq!(nb.predict(&[5.0, 10.5]), 1);
    }
}
