//! Classification and regression metrics.

/// Fraction of matching label pairs.
pub fn accuracy(truth: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    if truth.is_empty() {
        return 0.0;
    }
    truth.iter().zip(pred).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64
}

/// `confusion[t][p]` = count of instances with true label `t` predicted `p`.
pub fn confusion_matrix(truth: &[usize], pred: &[usize], n_classes: usize) -> Vec<Vec<u64>> {
    let mut m = vec![vec![0u64; n_classes]; n_classes];
    for (&t, &p) in truth.iter().zip(pred) {
        m[t][p] += 1;
    }
    m
}

/// Mean squared error.
pub fn mse(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    if truth.is_empty() {
        return 0.0;
    }
    truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / truth.len() as f64
}

/// Coefficient of determination (1 = perfect, 0 = mean predictor).
pub fn r2(truth: &[f64], pred: &[f64]) -> f64 {
    let n = truth.len();
    if n == 0 {
        return 0.0;
    }
    let mean: f64 = truth.iter().sum::<f64>() / n as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = truth.iter().zip(pred).map(|(t, p)| (t - p) * (t - p)).sum();
    if ss_tot < 1e-12 {
        return if ss_res < 1e-12 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Mean absolute error.
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    if truth.is_empty() {
        return 0.0;
    }
    truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / truth.len() as f64
}

/// Root mean squared error.
pub fn rmse(truth: &[f64], pred: &[f64]) -> f64 {
    mse(truth, pred).sqrt()
}

/// Average-tie fractional ranks (1-based): ties share the mean of the
/// positions they occupy, the standard convention for Spearman.
fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut r = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share rank mean(i+1 ..= j+1).
        let shared = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            r[k] = shared;
        }
        i = j + 1;
    }
    r
}

/// Spearman rank correlation: Pearson correlation of the rank vectors
/// (average ranks for ties). Returns 0.0 when either input is degenerate
/// (fewer than two points, or all values tied) — the honest answer for
/// "does this model rank candidates at all".
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.len() < 2 {
        return 0.0;
    }
    let (ra, rb) = (ranks(a), ranks(b));
    let n = a.len() as f64;
    let (ma, mb) = (ra.iter().sum::<f64>() / n, rb.iter().sum::<f64>() / n);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va < 1e-12 || vb < 1e-12 {
        return 0.0;
    }
    cov / (va * vb).sqrt()
}

/// Majority-class baseline accuracy — the number a learned model must
/// beat for the paper's "low classification error" claim to mean anything.
pub fn majority_baseline(truth: &[usize], n_classes: usize) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let mut counts = vec![0usize; n_classes];
    for &t in truth {
        counts[t] += 1;
    }
    *counts.iter().max().unwrap() as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_shape_and_counts() {
        let m = confusion_matrix(&[0, 0, 1, 1], &[0, 1, 1, 1], 2);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[0][1], 1);
        assert_eq!(m[1][1], 2);
        assert_eq!(m[1][0], 0);
    }

    #[test]
    fn r2_perfect_and_mean() {
        let t = [1.0, 2.0, 3.0];
        assert!((r2(&t, &t) - 1.0).abs() < 1e-12);
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(r2(&t, &mean_pred).abs() < 1e-12);
    }

    #[test]
    fn majority_baseline_counts() {
        assert_eq!(majority_baseline(&[0, 0, 0, 1], 2), 0.75);
    }

    #[test]
    fn mae_rmse_hand_computed() {
        // Residuals: +1, -2, 0 → MAE = (1+2+0)/3 = 1, MSE = 5/3,
        // RMSE = sqrt(5/3).
        let t = [3.0, 5.0, 7.0];
        let p = [2.0, 7.0, 7.0];
        assert!((mae(&t, &p) - 1.0).abs() < 1e-12);
        assert!((rmse(&t, &p) - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mae(&[], &[]), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn spearman_hand_computed() {
        // Perfect monotone agreement (nonlinear is fine): rho = 1.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 8.0, 27.0, 64.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        // Perfect inversion: rho = -1.
        let c = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&a, &c) + 1.0).abs() < 1e-12);
        // Textbook fixture: ranks of a = (1,2,3,4,5), ranks of
        // b = (2,1,4,3,5); d^2 sums to 4, rho = 1 - 6*4/(5*24) = 0.8.
        let a = [10.0, 20.0, 30.0, 40.0, 50.0];
        let b = [1.2, 0.9, 3.5, 3.1, 9.0];
        assert!((spearman(&a, &b) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn spearman_ties_use_average_ranks() {
        // a = (1, 2, 2, 4): the tied pair shares rank 2.5. Against a
        // strictly increasing b the correlation is Pearson of
        // (1, 2.5, 2.5, 4) vs (1, 2, 3, 4) = 4.5/sqrt(4.5*5) ~ 0.9487.
        let a = [1.0, 2.0, 2.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let expect = 4.5 / (4.5f64 * 5.0).sqrt();
        assert!(
            (spearman(&a, &b) - expect).abs() < 1e-12,
            "{}",
            spearman(&a, &b)
        );
    }

    #[test]
    fn spearman_degenerate_inputs_are_zero() {
        assert_eq!(spearman(&[], &[]), 0.0);
        assert_eq!(spearman(&[1.0], &[2.0]), 0.0);
        // All-tied input has zero rank variance.
        assert_eq!(spearman(&[5.0, 5.0, 5.0], &[1.0, 2.0, 3.0]), 0.0);
    }
}
