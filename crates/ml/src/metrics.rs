//! Classification and regression metrics.

/// Fraction of matching label pairs.
pub fn accuracy(truth: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    if truth.is_empty() {
        return 0.0;
    }
    truth.iter().zip(pred).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64
}

/// `confusion[t][p]` = count of instances with true label `t` predicted `p`.
pub fn confusion_matrix(truth: &[usize], pred: &[usize], n_classes: usize) -> Vec<Vec<u64>> {
    let mut m = vec![vec![0u64; n_classes]; n_classes];
    for (&t, &p) in truth.iter().zip(pred) {
        m[t][p] += 1;
    }
    m
}

/// Mean squared error.
pub fn mse(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    if truth.is_empty() {
        return 0.0;
    }
    truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / truth.len() as f64
}

/// Coefficient of determination (1 = perfect, 0 = mean predictor).
pub fn r2(truth: &[f64], pred: &[f64]) -> f64 {
    let n = truth.len();
    if n == 0 {
        return 0.0;
    }
    let mean: f64 = truth.iter().sum::<f64>() / n as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = truth.iter().zip(pred).map(|(t, p)| (t - p) * (t - p)).sum();
    if ss_tot < 1e-12 {
        return if ss_res < 1e-12 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Majority-class baseline accuracy — the number a learned model must
/// beat for the paper's "low classification error" claim to mean anything.
pub fn majority_baseline(truth: &[usize], n_classes: usize) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let mut counts = vec![0usize; n_classes];
    for &t in truth {
        counts[t] += 1;
    }
    *counts.iter().max().unwrap() as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_shape_and_counts() {
        let m = confusion_matrix(&[0, 0, 1, 1], &[0, 1, 1, 1], 2);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[0][1], 1);
        assert_eq!(m[1][1], 2);
        assert_eq!(m[1][0], 0);
    }

    #[test]
    fn r2_perfect_and_mean() {
        let t = [1.0, 2.0, 3.0];
        assert!((r2(&t, &t) - 1.0).abs() < 1e-12);
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(r2(&t, &mean_pred).abs() < 1e-12);
    }

    #[test]
    fn majority_baseline_counts() {
        assert_eq!(majority_baseline(&[0, 0, 0, 1], 2), 0.75);
    }
}
