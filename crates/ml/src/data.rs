//! Datasets and feature standardization.

use serde::{Deserialize, Serialize};

/// A labelled dataset with optional group ids (one group per benchmark,
/// used for leave-one-benchmark-out CV).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    pub x: Vec<Vec<f64>>,
    pub y: Vec<usize>,
    pub n_classes: usize,
    /// Group id per row (e.g. which benchmark produced the instance).
    pub groups: Vec<usize>,
    pub feature_names: Vec<String>,
}

impl Dataset {
    /// Empty dataset with named features.
    pub fn new(feature_names: Vec<String>, n_classes: usize) -> Self {
        Dataset {
            x: Vec::new(),
            y: Vec::new(),
            n_classes,
            groups: Vec::new(),
            feature_names,
        }
    }

    /// Append one instance.
    pub fn push(&mut self, features: Vec<f64>, label: usize, group: usize) {
        debug_assert!(self.feature_names.is_empty() || features.len() == self.feature_names.len());
        debug_assert!(label < self.n_classes);
        self.x.push(features);
        self.y.push(label);
        self.groups.push(group);
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True if the dataset holds no instances.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of features per instance (0 if empty).
    pub fn dim(&self) -> usize {
        self.x.first().map_or(0, |r| r.len())
    }

    /// Distinct group ids present.
    pub fn group_ids(&self) -> Vec<usize> {
        let mut g = self.groups.clone();
        g.sort_unstable();
        g.dedup();
        g
    }

    /// Row subsets by predicate on the index.
    pub fn subset(&self, keep: impl Fn(usize) -> bool) -> Dataset {
        let mut out = Dataset::new(self.feature_names.clone(), self.n_classes);
        for i in 0..self.len() {
            if keep(i) {
                out.push(self.x[i].clone(), self.y[i], self.groups[i]);
            }
        }
        out
    }
}

/// Per-feature standardization (z-score) fitted on training data and
/// applied to anything.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Standardizer {
    pub mean: Vec<f64>,
    pub std: Vec<f64>,
}

impl Standardizer {
    /// Fit means/stds on rows (std floors at 1e-9 to avoid division by 0).
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        let d = rows.first().map_or(0, |r| r.len());
        let n = rows.len().max(1) as f64;
        let mut mean = vec![0.0; d];
        for r in rows {
            for (m, v) in mean.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for r in rows {
            for ((s, v), m) in var.iter_mut().zip(r).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var.into_iter().map(|v| (v / n).sqrt().max(1e-9)).collect();
        Standardizer { mean, std }
    }

    /// Standardize one row.
    pub fn apply(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    /// Standardize many rows.
    pub fn apply_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.apply(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_push_and_subset() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
        d.push(vec![1.0, 2.0], 0, 0);
        d.push(vec![3.0, 4.0], 1, 1);
        d.push(vec![5.0, 6.0], 0, 1);
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.group_ids(), vec![0, 1]);
        let s = d.subset(|i| d.groups[i] == 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.y, vec![1, 0]);
    }

    #[test]
    fn standardizer_zero_mean_unit_var() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]];
        let st = Standardizer::fit(&rows);
        let z = st.apply_all(&rows);
        for j in 0..2 {
            let mean: f64 = z.iter().map(|r| r[j]).sum::<f64>() / 3.0;
            let var: f64 = z.iter().map(|r| r[j] * r[j]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn standardizer_constant_feature_safe() {
        let rows = vec![vec![7.0], vec![7.0]];
        let st = Standardizer::fit(&rows);
        let z = st.apply(&[7.0]);
        assert!(z[0].abs() < 1e-6);
        assert!(z[0].is_finite());
    }
}
