//! Ridge regression via the normal equations, solved with Gaussian
//! elimination (partial pivoting). Used for continuous performance
//! prediction (e.g. predicting speedup from features).

use crate::data::Standardizer;
use serde::{Deserialize, Serialize};

/// L2-regularized linear regression.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RidgeRegression {
    pub lambda: f64,
    /// Weights (bias last), set by `fit`.
    weights: Vec<f64>,
    standardizer: Option<Standardizer>,
}

impl Default for RidgeRegression {
    fn default() -> Self {
        RidgeRegression {
            lambda: 1e-3,
            weights: Vec::new(),
            standardizer: None,
        }
    }
}

/// Solve `a · w = b` in place with partial pivoting; returns `w`.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let piv = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .unwrap();
        a.swap(col, piv);
        b.swap(col, piv);
        let diag = a[col][col];
        if diag.abs() < 1e-12 {
            continue; // singular direction: leave weight at 0
        }
        let (pivot_rows, elim_rows) = a.split_at_mut(col + 1);
        let pivot = &pivot_rows[col];
        for (off, row) in elim_rows[..n - col - 1].iter_mut().enumerate() {
            let f = row[col] / diag;
            for (x, &p) in row[col..n].iter_mut().zip(&pivot[col..n]) {
                *x -= f * p;
            }
            b[col + 1 + off] -= f * b[col];
        }
    }
    let mut w = vec![0.0; n];
    for col in (0..n).rev() {
        let mut s = b[col];
        for k in (col + 1)..n {
            s -= a[col][k] * w[k];
        }
        w[col] = if a[col][col].abs() < 1e-12 {
            0.0
        } else {
            s / a[col][col]
        };
    }
    w
}

impl RidgeRegression {
    /// Fit on rows `x` with targets `y`.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        let st = Standardizer::fit(x);
        let xs = st.apply_all(x);
        self.standardizer = Some(st);
        let d = xs.first().map_or(0, |r| r.len());
        let dd = d + 1; // bias column

        // A = X^T X + λI,  b = X^T y  (bias unregularized).
        let mut a = vec![vec![0.0; dd]; dd];
        let mut bv = vec![0.0; dd];
        for (row, &t) in xs.iter().zip(y) {
            for i in 0..dd {
                let xi = if i < d { row[i] } else { 1.0 };
                bv[i] += xi * t;
                for j in 0..dd {
                    let xj = if j < d { row[j] } else { 1.0 };
                    a[i][j] += xi * xj;
                }
            }
        }
        for (i, ai) in a.iter_mut().enumerate().take(d) {
            ai[i] += self.lambda * x.len() as f64;
        }
        self.weights = solve(a, bv);
    }

    /// Predict the target for one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.weights.is_empty() {
            return 0.0;
        }
        let xs = self
            .standardizer
            .as_ref()
            .map(|s| s.apply(x))
            .unwrap_or_else(|| x.to_vec());
        let d = self.weights.len() - 1;
        let mut v = self.weights[d];
        for (w, xi) in self.weights[..d].iter().zip(&xs) {
            v += w * xi;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_linear_function() {
        // y = 3 x0 - 2 x1 + 5
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let (a, b) = (i as f64 * 0.3, j as f64 * 0.2);
                x.push(vec![a, b]);
                y.push(3.0 * a - 2.0 * b + 5.0);
            }
        }
        let mut r = RidgeRegression::default();
        r.fit(&x, &y);
        let pred = r.predict(&[2.0, 1.0]);
        assert!((pred - 9.0).abs() < 0.1, "{pred}");
    }

    #[test]
    fn regularization_shrinks_weights() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![0.0, 10.0, 20.0, 30.0];
        let mut light = RidgeRegression {
            lambda: 1e-6,
            ..Default::default()
        };
        let mut heavy = RidgeRegression {
            lambda: 100.0,
            ..Default::default()
        };
        light.fit(&x, &y);
        heavy.fit(&x, &y);
        let spread_light = light.predict(&[3.0]) - light.predict(&[0.0]);
        let spread_heavy = heavy.predict(&[3.0]) - heavy.predict(&[0.0]);
        assert!(spread_heavy.abs() < spread_light.abs());
    }

    #[test]
    fn constant_target() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![7.0, 7.0, 7.0];
        let mut r = RidgeRegression::default();
        r.fit(&x, &y);
        assert!((r.predict(&[10.0]) - 7.0).abs() < 0.2);
    }

    #[test]
    fn unfitted_predicts_zero() {
        let r = RidgeRegression::default();
        assert_eq!(r.predict(&[1.0, 2.0]), 0.0);
    }
}
