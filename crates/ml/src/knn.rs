//! Distance-weighted k-nearest-neighbour classification on standardized
//! features.

use crate::data::Standardizer;
use crate::Classifier;
use serde::{Deserialize, Serialize};

/// k-NN classifier. Stores the (standardized) training set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KNearestNeighbors {
    pub k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<usize>,
    n_classes: usize,
    standardizer: Option<Standardizer>,
}

impl KNearestNeighbors {
    /// A k-NN classifier with the given neighbourhood size.
    pub fn new(k: usize) -> Self {
        KNearestNeighbors {
            k: k.max(1),
            x: Vec::new(),
            y: Vec::new(),
            n_classes: 0,
            standardizer: None,
        }
    }

    fn votes(&self, x: &[f64]) -> Vec<f64> {
        let xs = self
            .standardizer
            .as_ref()
            .map(|s| s.apply(x))
            .unwrap_or_else(|| x.to_vec());
        let mut dists: Vec<(f64, usize)> = self
            .x
            .iter()
            .zip(&self.y)
            .map(|(xi, &yi)| {
                let d: f64 = xi
                    .iter()
                    .zip(&xs)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                (d, yi)
            })
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut votes = vec![0.0; self.n_classes.max(1)];
        for &(d, yi) in dists.iter().take(self.k) {
            votes[yi] += 1.0 / (d + 1e-6);
        }
        votes
    }
}

impl Classifier for KNearestNeighbors {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) {
        let st = Standardizer::fit(x);
        self.x = st.apply_all(x);
        self.standardizer = Some(st);
        self.y = y.to_vec();
        self.n_classes = n_classes;
    }

    fn predict(&self, x: &[f64]) -> usize {
        let v = self.votes(x);
        v.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn predict_proba(&self, x: &[f64], n_classes: usize) -> Vec<f64> {
        let mut v = self.votes(x);
        v.resize(n_classes, 0.0);
        let s: f64 = v.iter().sum::<f64>().max(1e-12);
        v.into_iter().map(|p| p / s).collect()
    }

    fn name(&self) -> &'static str {
        "knn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_wins() {
        let x = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
        ];
        let y = vec![0, 0, 1, 1];
        let mut knn = KNearestNeighbors::new(3);
        knn.fit(&x, &y, 2);
        assert_eq!(knn.predict(&[0.2, 0.1]), 0);
        assert_eq!(knn.predict(&[4.9, 5.2]), 1);
    }

    #[test]
    fn handles_nonlinear_boundaries() {
        // XOR pattern: linear models fail, k-NN should not.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                let (a, b) = (i as f64, j as f64);
                x.push(vec![a, b]);
                y.push(((a < 2.5) ^ (b < 2.5)) as usize);
            }
        }
        let mut knn = KNearestNeighbors::new(1);
        knn.fit(&x, &y, 2);
        let acc = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| knn.predict(xi) == yi)
            .count() as f64
            / x.len() as f64;
        assert!(acc > 0.95, "{acc}");
    }

    #[test]
    fn standardization_matters_for_scale() {
        // Feature 1 is 1000x feature 0; without standardization the useful
        // feature would be drowned out.
        let x = vec![
            vec![0.0, 1000.0],
            vec![1.0, 1010.0],
            vec![0.1, 2000.0],
            vec![0.9, 1990.0],
        ];
        let y = vec![0, 1, 0, 1]; // class tracks feature 0 only
        let mut knn = KNearestNeighbors::new(1);
        knn.fit(&x, &y, 2);
        assert_eq!(knn.predict(&[0.05, 1500.0]), 0);
        assert_eq!(knn.predict(&[0.95, 1500.0]), 1);
    }

    #[test]
    fn k_larger_than_dataset_is_safe() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0, 1];
        let mut knn = KNearestNeighbors::new(50);
        knn.fit(&x, &y, 2);
        let _ = knn.predict(&[0.4]);
    }
}
