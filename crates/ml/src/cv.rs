//! Cross-validation protocols.
//!
//! The paper (Section II, "Training the Learning Component") prescribes
//! leave-one-out cross-validation over *benchmarks*: train on instances
//! from N-1 programs, test on the held-out program. That is
//! [`leave_one_group_out`]; plain per-instance LOOCV and k-fold are also
//! provided.

use crate::data::Dataset;
use crate::metrics::accuracy;
use crate::Classifier;

/// Result of one cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CvResult {
    /// Accuracy per fold.
    pub fold_accuracy: Vec<f64>,
    /// Pooled predictions in dataset order (where tested).
    pub predictions: Vec<usize>,
}

impl CvResult {
    /// Mean over folds.
    pub fn mean_accuracy(&self) -> f64 {
        if self.fold_accuracy.is_empty() {
            return 0.0;
        }
        self.fold_accuracy.iter().sum::<f64>() / self.fold_accuracy.len() as f64
    }
}

/// Leave-one-*group*-out CV: each fold holds out every instance of one
/// group (= one benchmark). `make` builds a fresh classifier per fold.
pub fn leave_one_group_out(data: &Dataset, make: &dyn Fn() -> Box<dyn Classifier>) -> CvResult {
    let groups = data.group_ids();
    let mut fold_accuracy = Vec::with_capacity(groups.len());
    let mut predictions = vec![0usize; data.len()];
    for g in groups {
        let train = data.subset(|i| data.groups[i] != g);
        let test_idx: Vec<usize> = (0..data.len()).filter(|&i| data.groups[i] == g).collect();
        if train.is_empty() || test_idx.is_empty() {
            continue;
        }
        let mut model = make();
        model.fit(&train.x, &train.y, data.n_classes);
        let preds: Vec<usize> = test_idx
            .iter()
            .map(|&i| model.predict(&data.x[i]))
            .collect();
        let truth: Vec<usize> = test_idx.iter().map(|&i| data.y[i]).collect();
        fold_accuracy.push(accuracy(&truth, &preds));
        for (&i, &p) in test_idx.iter().zip(&preds) {
            predictions[i] = p;
        }
    }
    CvResult {
        fold_accuracy,
        predictions,
    }
}

/// Per-instance leave-one-out CV.
pub fn leave_one_out(data: &Dataset, make: &dyn Fn() -> Box<dyn Classifier>) -> CvResult {
    let mut fold_accuracy = Vec::with_capacity(data.len());
    let mut predictions = vec![0usize; data.len()];
    for (i, pred) in predictions.iter_mut().enumerate() {
        let train = data.subset(|j| j != i);
        let mut model = make();
        model.fit(&train.x, &train.y, data.n_classes);
        let p = model.predict(&data.x[i]);
        *pred = p;
        fold_accuracy.push((p == data.y[i]) as u8 as f64);
    }
    CvResult {
        fold_accuracy,
        predictions,
    }
}

/// Deterministic k-fold CV (folds are contiguous stripes `i % k`).
pub fn k_fold(data: &Dataset, k: usize, make: &dyn Fn() -> Box<dyn Classifier>) -> CvResult {
    let k = k.max(2);
    let mut fold_accuracy = Vec::with_capacity(k);
    let mut predictions = vec![0usize; data.len()];
    for fold in 0..k {
        let train = data.subset(|i| i % k != fold);
        let test_idx: Vec<usize> = (0..data.len()).filter(|&i| i % k == fold).collect();
        if train.is_empty() || test_idx.is_empty() {
            continue;
        }
        let mut model = make();
        model.fit(&train.x, &train.y, data.n_classes);
        let preds: Vec<usize> = test_idx
            .iter()
            .map(|&i| model.predict(&data.x[i]))
            .collect();
        let truth: Vec<usize> = test_idx.iter().map(|&i| data.y[i]).collect();
        fold_accuracy.push(accuracy(&truth, &preds));
        for (&i, &p) in test_idx.iter().zip(&preds) {
            predictions[i] = p;
        }
    }
    CvResult {
        fold_accuracy,
        predictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KNearestNeighbors;

    fn blob_dataset() -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "y".into()], 2);
        for g in 0..4 {
            for i in 0..6 {
                let j = i as f64 * 0.1;
                d.push(vec![0.0 + j, 0.0], 0, g);
                d.push(vec![5.0 + j, 5.0], 1, g);
            }
        }
        d
    }

    fn make_knn() -> Box<dyn Classifier> {
        Box::new(KNearestNeighbors::new(3))
    }

    #[test]
    fn group_cv_runs_one_fold_per_group() {
        let d = blob_dataset();
        let r = leave_one_group_out(&d, &make_knn);
        assert_eq!(r.fold_accuracy.len(), 4);
        assert!(r.mean_accuracy() > 0.95, "{:?}", r.fold_accuracy);
    }

    #[test]
    fn loo_cv_high_accuracy_on_easy_data() {
        let d = blob_dataset();
        let r = leave_one_out(&d, &make_knn);
        assert_eq!(r.fold_accuracy.len(), d.len());
        assert!(r.mean_accuracy() > 0.95);
    }

    #[test]
    fn kfold_covers_every_instance() {
        let d = blob_dataset();
        let r = k_fold(&d, 4, &make_knn);
        assert_eq!(r.predictions.len(), d.len());
        assert!(r.mean_accuracy() > 0.9);
    }

    #[test]
    fn group_holdout_is_honest() {
        // Make group 3's labels inverted: its fold accuracy should tank
        // while others stay high — proving the fold really held it out.
        let mut d = blob_dataset();
        for i in 0..d.len() {
            if d.groups[i] == 3 {
                d.y[i] = 1 - d.y[i];
            }
        }
        let r = leave_one_group_out(&d, &make_knn);
        let worst = r
            .fold_accuracy
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let best = r.fold_accuracy.iter().cloned().fold(0.0, f64::max);
        assert!(worst < 0.2, "inverted group must be mispredicted: {worst}");
        assert!(best > 0.9);
    }
}
