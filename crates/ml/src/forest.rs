//! Random forest: bagged decision trees with feature subsampling —
//! the "more advanced technique" tier of Section III-F, for when the
//! simple learners plateau.

use crate::dtree::DecisionTree;
use crate::Classifier;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An ensemble of CART trees trained on bootstrap samples over random
/// feature subsets. Deterministic for a fixed seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    pub n_trees: usize,
    pub max_depth: usize,
    pub min_leaf: usize,
    pub seed: u64,
    trees: Vec<(DecisionTree, Vec<usize>)>,
    n_classes: usize,
}

impl RandomForest {
    /// A forest of `n_trees` trees.
    pub fn new(n_trees: usize, max_depth: usize, seed: u64) -> Self {
        RandomForest {
            n_trees: n_trees.max(1),
            max_depth,
            min_leaf: 2,
            seed,
            trees: Vec::new(),
            n_classes: 0,
        }
    }

    fn project(row: &[f64], feats: &[usize]) -> Vec<f64> {
        feats.iter().map(|&j| row[j]).collect()
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) {
        self.n_classes = n_classes;
        self.trees.clear();
        let n = x.len();
        let d = x.first().map_or(0, |r| r.len());
        if n == 0 || d == 0 {
            return;
        }
        // sqrt(d) features per tree, at least 1.
        let k = ((d as f64).sqrt().ceil() as usize).clamp(1, d);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        for _ in 0..self.n_trees {
            // Bootstrap rows.
            let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            // Random feature subset (sampled without replacement).
            let mut feats: Vec<usize> = (0..d).collect();
            for i in (1..feats.len()).rev() {
                let j = rng.gen_range(0..=i);
                feats.swap(i, j);
            }
            feats.truncate(k);
            feats.sort_unstable();

            let bx: Vec<Vec<f64>> = rows.iter().map(|&i| Self::project(&x[i], &feats)).collect();
            let by: Vec<usize> = rows.iter().map(|&i| y[i]).collect();
            let mut tree = DecisionTree::new(self.max_depth, self.min_leaf);
            tree.fit(&bx, &by, n_classes);
            self.trees.push((tree, feats));
        }
    }

    fn predict(&self, x: &[f64]) -> usize {
        let p = self.predict_proba(x, self.n_classes.max(1));
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn predict_proba(&self, x: &[f64], n_classes: usize) -> Vec<f64> {
        let mut acc = vec![0.0; n_classes];
        if self.trees.is_empty() {
            if n_classes > 0 {
                acc[0] = 1.0;
            }
            return acc;
        }
        for (tree, feats) in &self.trees {
            let proj = Self::project(x, feats);
            for (a, p) in acc.iter_mut().zip(tree.predict_proba(&proj, n_classes)) {
                *a += p;
            }
        }
        let s: f64 = acc.iter().sum::<f64>().max(1e-12);
        for a in &mut acc {
            *a /= s;
        }
        acc
    }

    fn name(&self) -> &'static str {
        "forest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                let (a, b) = (i as f64, j as f64);
                x.push(vec![a, b]);
                y.push(((a < 4.0) ^ (b < 4.0)) as usize);
            }
        }
        (x, y)
    }

    #[test]
    fn fits_xor_like_single_tree() {
        let (x, y) = xor_data();
        let mut f = RandomForest::new(25, 6, 7);
        f.fit(&x, &y, 2);
        let acc = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| f.predict(xi) == yi)
            .count() as f64
            / x.len() as f64;
        assert!(acc > 0.85, "{acc}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (x, y) = xor_data();
        let mut a = RandomForest::new(10, 4, 3);
        let mut b = RandomForest::new(10, 4, 3);
        a.fit(&x, &y, 2);
        b.fit(&x, &y, 2);
        for row in &x {
            assert_eq!(a.predict_proba(row, 2), b.predict_proba(row, 2));
        }
    }

    #[test]
    fn probabilities_normalized() {
        let (x, y) = xor_data();
        let mut f = RandomForest::new(9, 4, 1);
        f.fit(&x, &y, 2);
        let p = f.predict_proba(&[1.0, 1.0], 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn robust_to_noise_features() {
        // 18 noise features + 2 informative: the forest's feature
        // subsampling must still find signal.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..120 {
            let label = (i % 2) as usize;
            let mut row: Vec<f64> = (0..18)
                .map(|j| (((i * 31 + j * 17) % 101) as f64) / 10.0)
                .collect();
            row.push(label as f64 * 5.0 + (i % 3) as f64 * 0.1);
            row.push(label as f64 * -3.0);
            x.push(row);
            y.push(label);
        }
        let mut f = RandomForest::new(40, 5, 5);
        f.fit(&x, &y, 2);
        let acc = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| f.predict(xi) == yi)
            .count() as f64
            / x.len() as f64;
        assert!(acc > 0.9, "{acc}");
    }

    #[test]
    fn unfitted_predicts_class_zero() {
        let f = RandomForest::new(5, 3, 1);
        assert_eq!(f.predict(&[1.0]), 0);
    }
}
