//! CART decision tree with Gini impurity, depth and leaf-size limits.
//!
//! The paper's related work highlights decision-tree learning (Monsifrot
//! et al.) for loop-unrolling heuristics; trees are also the learner whose
//! output is easiest to "convert into code and integrate into the
//! compiler" (Section II, integration step).

use crate::Classifier;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Class-probability distribution at the leaf.
        dist: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// Decision-tree classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    pub max_depth: usize,
    pub min_leaf: usize,
    root: Option<Node>,
    n_classes: usize,
}

impl DecisionTree {
    /// A tree limited to `max_depth` with at least `min_leaf` samples per
    /// leaf.
    pub fn new(max_depth: usize, min_leaf: usize) -> Self {
        DecisionTree {
            max_depth,
            min_leaf: min_leaf.max(1),
            root: None,
            n_classes: 0,
        }
    }

    fn class_dist(y: &[usize], idx: &[usize], n_classes: usize) -> Vec<f64> {
        let mut counts = vec![0.0; n_classes];
        for &i in idx {
            counts[y[i]] += 1.0;
        }
        let s: f64 = counts.iter().sum::<f64>().max(1.0);
        counts.into_iter().map(|c| c / s).collect()
    }

    fn gini(dist: &[f64]) -> f64 {
        1.0 - dist.iter().map(|p| p * p).sum::<f64>()
    }

    fn build(&self, x: &[Vec<f64>], y: &[usize], idx: Vec<usize>, depth: usize) -> Node {
        let dist = Self::class_dist(y, &idx, self.n_classes);
        let node_gini = Self::gini(&dist);
        if depth >= self.max_depth || idx.len() < self.min_leaf * 2 || node_gini < 1e-9 {
            return Node::Leaf { dist };
        }

        let d = x[0].len();
        // best = (impurity, feature, threshold); the feature index
        // addresses a column across rows of `x`.
        let mut best: Option<(f64, usize, f64)> = None;
        #[allow(clippy::needless_range_loop)]
        for feature in 0..d {
            // Candidate thresholds: midpoints of sorted unique values.
            let mut vals: Vec<f64> = idx.iter().map(|&i| x[i][feature]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            for w in vals.windows(2) {
                let threshold = (w[0] + w[1]) / 2.0;
                let (l, r): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| x[i][feature] <= threshold);
                if l.len() < self.min_leaf || r.len() < self.min_leaf {
                    continue;
                }
                let dl = Self::class_dist(y, &l, self.n_classes);
                let dr = Self::class_dist(y, &r, self.n_classes);
                let imp = (l.len() as f64 * Self::gini(&dl) + r.len() as f64 * Self::gini(&dr))
                    / idx.len() as f64;
                if best.is_none_or(|(b, _, _)| imp < b) {
                    best = Some((imp, feature, threshold));
                }
            }
        }

        // Accept zero-gain splits too (XOR-style problems have no
        // single-split gain yet need the split to make progress); the
        // depth limit bounds the recursion.
        match best {
            Some((imp, feature, threshold)) if imp <= node_gini + 1e-12 => {
                let (l, r): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| x[i][feature] <= threshold);
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(self.build(x, y, l, depth + 1)),
                    right: Box::new(self.build(x, y, r, depth + 1)),
                }
            }
            _ => Node::Leaf { dist },
        }
    }

    fn leaf_dist<'a>(&'a self, x: &[f64]) -> Option<&'a [f64]> {
        let mut node = self.root.as_ref()?;
        loop {
            match node {
                Node::Leaf { dist } => return Some(dist),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Depth of the fitted tree (0 = single leaf).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        self.root.as_ref().map_or(0, d)
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) {
        self.n_classes = n_classes;
        let idx: Vec<usize> = (0..x.len()).collect();
        self.root = Some(self.build(x, y, idx, 0));
    }

    fn predict(&self, x: &[f64]) -> usize {
        self.leaf_dist(x)
            .map(|d| {
                d.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .unwrap_or(0)
    }

    fn predict_proba(&self, x: &[f64], n_classes: usize) -> Vec<f64> {
        let mut p = self
            .leaf_dist(x)
            .map(|d| d.to_vec())
            .unwrap_or_else(|| vec![1.0 / n_classes as f64; n_classes]);
        p.resize(n_classes, 0.0);
        p
    }

    fn name(&self) -> &'static str {
        "dtree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_xor() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                let (a, b) = (i as f64, j as f64);
                x.push(vec![a, b]);
                y.push(((a < 3.0) ^ (b < 3.0)) as usize);
            }
        }
        let mut t = DecisionTree::new(4, 1);
        t.fit(&x, &y, 2);
        let acc = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| t.predict(xi) == yi)
            .count() as f64
            / x.len() as f64;
        assert!(acc > 0.97, "{acc}");
        assert!(t.depth() >= 2, "XOR needs at least two levels");
    }

    #[test]
    fn depth_limit_respected() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..64 {
            x.push(vec![i as f64]);
            y.push((i % 2) as usize); // maximally fragmented labels
        }
        let mut t = DecisionTree::new(3, 1);
        t.fit(&x, &y, 2);
        assert!(t.depth() <= 3);
    }

    #[test]
    fn pure_node_stops_early() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![1, 1, 1];
        let mut t = DecisionTree::new(10, 1);
        t.fit(&x, &y, 2);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict(&[5.0]), 1);
    }

    #[test]
    fn min_leaf_prevents_overfit_split() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![0, 0, 0, 1];
        let mut t = DecisionTree::new(10, 3);
        t.fit(&x, &y, 2);
        // A split would leave a 1-sample leaf; min_leaf=3 forbids it.
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn probabilities_match_leaf_composition() {
        let x = vec![vec![0.0], vec![0.1], vec![0.2], vec![0.3]];
        let y = vec![0, 0, 0, 1];
        let mut t = DecisionTree::new(0, 1); // forced single leaf
        t.fit(&x, &y, 2);
        let p = t.predict_proba(&[0.0], 2);
        assert!((p[0] - 0.75).abs() < 1e-9);
        assert!((p[1] - 0.25).abs() < 1e-9);
    }
}
