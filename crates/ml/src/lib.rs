//! # ic-ml — from-scratch supervised learning for compiler heuristics
//!
//! The paper's Section III-F calls for "a large breadth of different
//! learning techniques ... from simple techniques, such as logistic
//! regression and nearest neighbor classification" and concludes
//! (Section V) that *"a variety of learning algorithms all had low
//! classification error rates"* on well-phrased compiler problems. This
//! crate provides that variety, implemented from first principles:
//!
//! * [`logreg::LogisticRegression`] — one-vs-rest logistic regression
//!   trained by batch gradient descent;
//! * [`knn::KNearestNeighbors`] — distance-weighted k-NN;
//! * [`dtree::DecisionTree`] — CART with Gini impurity;
//! * [`nbayes::GaussianNaiveBayes`];
//! * [`forest::RandomForest`] — bagged trees with feature subsampling
//!   (the "more advanced techniques" tier of Sec. III-F);
//! * [`ridge::RidgeRegression`] — for continuous performance prediction.
//!
//! [`cv`] implements the evaluation protocol the paper prescribes:
//! leave-one-out cross-validation, including the *grouped* variant
//! (leave-one-benchmark-out) that keeps every training instance from the
//! held-out program out of the training set.

pub mod cv;
pub mod data;
pub mod dtree;
pub mod forest;
pub mod knn;
pub mod logreg;
pub mod metrics;
pub mod nbayes;
pub mod ridge;

pub use data::Dataset;

/// A trainable multi-class classifier.
pub trait Classifier {
    /// Fit on feature rows `x` with labels `y` in `0..n_classes`.
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize);

    /// Predict the label of one feature row.
    fn predict(&self, x: &[f64]) -> usize;

    /// Class-probability estimates (default: one-hot of `predict`).
    fn predict_proba(&self, x: &[f64], n_classes: usize) -> Vec<f64> {
        let mut p = vec![0.0; n_classes];
        p[self.predict(x)] = 1.0;
        p
    }

    /// Short display name ("logreg", "knn", ...).
    fn name(&self) -> &'static str;
}

/// Every classifier in the suite, boxed, with paper-reasonable defaults.
/// The methodology harness trains all of them and reports per-learner
/// accuracy (the paper's Section V claim).
pub fn all_classifiers() -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(logreg::LogisticRegression::default()),
        Box::new(knn::KNearestNeighbors::new(5)),
        Box::new(dtree::DecisionTree::new(6, 4)),
        Box::new(nbayes::GaussianNaiveBayes::default()),
        Box::new(forest::RandomForest::new(25, 6, 0xF0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-class linearly-separable problem every learner must ace.
    fn separable() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let v = i as f64 / 10.0;
            x.push(vec![v, 1.0 - v]);
            y.push(0);
            x.push(vec![v + 6.0, v + 5.0]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn all_learners_fit_separable_data() {
        let (x, y) = separable();
        for mut c in all_classifiers() {
            c.fit(&x, &y, 2);
            let correct = x
                .iter()
                .zip(&y)
                .filter(|(xi, &yi)| c.predict(xi) == yi)
                .count();
            let acc = correct as f64 / x.len() as f64;
            assert!(acc > 0.95, "{} only reached {acc}", c.name());
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = separable();
        for mut c in all_classifiers() {
            c.fit(&x, &y, 2);
            let p = c.predict_proba(&x[0], 2);
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "{}: {:?}", c.name(), p);
        }
    }
}
