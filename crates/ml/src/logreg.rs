//! One-vs-rest logistic regression trained by batch gradient descent with
//! L2 regularization. Features are standardized internally, so callers
//! can feed raw counter values.

use crate::data::Standardizer;
use crate::Classifier;
use serde::{Deserialize, Serialize};

/// Logistic-regression classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    /// Learning rate.
    pub lr: f64,
    /// Gradient-descent epochs.
    pub epochs: usize,
    /// L2 penalty.
    pub l2: f64,
    /// Per-class weight vectors (bias last), set by `fit`.
    weights: Vec<Vec<f64>>,
    standardizer: Option<Standardizer>,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression {
            lr: 0.3,
            epochs: 300,
            l2: 1e-4,
            weights: Vec::new(),
            standardizer: None,
        }
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    fn score(&self, class: usize, x: &[f64]) -> f64 {
        let w = &self.weights[class];
        let mut z = w[w.len() - 1]; // bias
        for (wi, xi) in w[..w.len() - 1].iter().zip(x) {
            z += wi * xi;
        }
        z
    }

    /// Per-class sigmoid scores normalized to sum 1.
    fn proba_internal(&self, x: &[f64]) -> Vec<f64> {
        let raw: Vec<f64> = (0..self.weights.len())
            .map(|c| sigmoid(self.score(c, x)))
            .collect();
        let s: f64 = raw.iter().sum::<f64>().max(1e-12);
        raw.into_iter().map(|p| p / s).collect()
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) {
        assert_eq!(x.len(), y.len());
        let st = Standardizer::fit(x);
        let xs = st.apply_all(x);
        self.standardizer = Some(st);
        let d = xs.first().map_or(0, |r| r.len());
        let n = xs.len().max(1) as f64;

        self.weights = vec![vec![0.0; d + 1]; n_classes];
        for class in 0..n_classes {
            let targets: Vec<f64> = y.iter().map(|&yi| (yi == class) as u8 as f64).collect();
            let w = &mut self.weights[class];
            for _ in 0..self.epochs {
                let mut grad = vec![0.0; d + 1];
                for (xi, &t) in xs.iter().zip(&targets) {
                    let mut z = w[d];
                    for (wi, v) in w[..d].iter().zip(xi) {
                        z += wi * v;
                    }
                    let err = sigmoid(z) - t;
                    for (g, v) in grad[..d].iter_mut().zip(xi) {
                        *g += err * v;
                    }
                    grad[d] += err;
                }
                for j in 0..=d {
                    let reg = if j < d { self.l2 * w[j] } else { 0.0 };
                    w[j] -= self.lr * (grad[j] / n + reg);
                }
            }
        }
    }

    fn predict(&self, x: &[f64]) -> usize {
        let xs = self
            .standardizer
            .as_ref()
            .map(|s| s.apply(x))
            .unwrap_or_else(|| x.to_vec());
        let p = self.proba_internal(&xs);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn predict_proba(&self, x: &[f64], n_classes: usize) -> Vec<f64> {
        let xs = self
            .standardizer
            .as_ref()
            .map(|s| s.apply(x))
            .unwrap_or_else(|| x.to_vec());
        let mut p = self.proba_internal(&xs);
        p.resize(n_classes, 0.0);
        p
    }

    fn name(&self) -> &'static str {
        "logreg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_boundary() {
        // y = 1 iff x0 + x1 > 4
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                x.push(vec![i as f64 * 0.5, j as f64 * 0.5]);
                y.push(((i + j) as f64 * 0.5 > 4.0) as usize);
            }
        }
        let mut lr = LogisticRegression::default();
        lr.fit(&x, &y, 2);
        let acc = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| lr.predict(xi) == yi)
            .count() as f64
            / x.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn multiclass_one_vs_rest() {
        // Three blobs on a line.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let jitter = (i % 5) as f64 * 0.05;
            x.push(vec![0.0 + jitter, 0.0]);
            y.push(0);
            x.push(vec![5.0 + jitter, 5.0]);
            y.push(1);
            x.push(vec![10.0 + jitter, 10.0]);
            y.push(2);
        }
        let mut lr = LogisticRegression::default();
        lr.fit(&x, &y, 3);
        assert_eq!(lr.predict(&[0.1, 0.0]), 0);
        assert_eq!(lr.predict(&[5.1, 5.0]), 1);
        assert_eq!(lr.predict(&[9.9, 10.0]), 2);
    }

    #[test]
    fn probabilities_reflect_confidence() {
        let x = vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]];
        let y = vec![0, 0, 1, 1];
        let mut lr = LogisticRegression::default();
        lr.fit(&x, &y, 2);
        let far = lr.predict_proba(&[20.0], 2);
        let near = lr.predict_proba(&[5.5], 2);
        assert!(far[1] > near[1], "far point is more confidently class 1");
    }

    #[test]
    fn deterministic_training() {
        let x = vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]];
        let y = vec![0, 0, 1, 1];
        let mut a = LogisticRegression::default();
        let mut b = LogisticRegression::default();
        a.fit(&x, &y, 2);
        b.fit(&x, &y, 2);
        assert_eq!(a.predict_proba(&[3.0], 2), b.predict_proba(&[3.0], 2));
    }
}
