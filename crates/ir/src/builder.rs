//! Ergonomic construction of [`Function`]s.
//!
//! The builder keeps a *current block* cursor; emit methods append to it.
//! Terminating the current block (via [`FunctionBuilder::jump`] etc.)
//! requires explicitly switching to a new block before emitting again,
//! which makes malformed control flow hard to construct by accident.

use crate::{
    ArrId, BinOp, Block, BlockId, FuncId, Function, Inst, Operand, Reg, Terminator, Ty, UnOp,
};

/// Builder for a single [`Function`].
pub struct FunctionBuilder {
    func: Function,
    cur: BlockId,
    /// Blocks that have been explicitly terminated.
    sealed: Vec<bool>,
}

impl FunctionBuilder {
    /// Start a function with the given name, parameter types and return type.
    /// Parameters become registers `0..param_tys.len()`.
    pub fn new(name: impl Into<String>, param_tys: &[Ty], ret_ty: Option<Ty>) -> Self {
        let mut func = Function {
            name: name.into(),
            params: Vec::new(),
            reg_tys: Vec::new(),
            blocks: vec![Block::new()],
            ret_ty,
        };
        for &ty in param_tys {
            let r = func.new_reg(ty);
            func.params.push(r);
        }
        FunctionBuilder {
            func,
            cur: BlockId(0),
            sealed: vec![false],
        }
    }

    /// The parameter registers.
    pub fn params(&self) -> Vec<Reg> {
        self.func.params.clone()
    }

    /// Allocate a fresh register.
    pub fn new_reg(&mut self, ty: Ty) -> Reg {
        self.func.new_reg(ty)
    }

    /// Create a new (unterminated) block; the cursor does not move.
    pub fn new_block(&mut self) -> BlockId {
        let id = self.func.add_block();
        self.sealed.push(false);
        id
    }

    /// Move the emission cursor to `b`. Panics if `b` is already terminated.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!(
            !self.sealed[b.index()],
            "switch_to: block {:?} already terminated",
            b
        );
        self.cur = b;
    }

    /// The block currently being emitted into.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    fn emit(&mut self, inst: Inst) {
        assert!(
            !self.sealed[self.cur.index()],
            "emit into terminated block {:?}",
            self.cur
        );
        self.func.blocks[self.cur.index()].insts.push(inst);
    }

    /// Emit `dst = a op b` into a fresh register.
    pub fn bin(&mut self, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.new_reg(op.result_ty());
        self.emit(Inst::Bin {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Emit `dst = a op b` into an existing register.
    pub fn bin_to(&mut self, dst: Reg, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.emit(Inst::Bin {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
    }

    /// Emit `dst = op a` into a fresh register.
    pub fn un(&mut self, op: UnOp, a: impl Into<Operand>) -> Reg {
        let dst = self.new_reg(op.result_ty());
        self.emit(Inst::Un {
            op,
            dst,
            a: a.into(),
        });
        dst
    }

    /// Emit `dst = src` into an existing register.
    pub fn mov(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.emit(Inst::Mov {
            dst,
            src: src.into(),
        });
    }

    /// Emit a load into a fresh register.
    pub fn load(&mut self, ty: Ty, arr: ArrId, idx: impl Into<Operand>) -> Reg {
        let dst = self.new_reg(ty);
        self.emit(Inst::Load {
            dst,
            arr,
            idx: idx.into(),
        });
        dst
    }

    /// Emit a store.
    pub fn store(&mut self, arr: ArrId, idx: impl Into<Operand>, val: impl Into<Operand>) {
        self.emit(Inst::Store {
            arr,
            idx: idx.into(),
            val: val.into(),
        });
    }

    /// Emit a call with a result.
    pub fn call(&mut self, ty: Ty, callee: FuncId, args: Vec<Operand>) -> Reg {
        let dst = self.new_reg(ty);
        self.emit(Inst::Call {
            dst: Some(dst),
            callee,
            args,
        });
        dst
    }

    /// Emit a void call.
    pub fn call_void(&mut self, callee: FuncId, args: Vec<Operand>) {
        self.emit(Inst::Call {
            dst: None,
            callee,
            args,
        });
    }

    fn terminate(&mut self, term: Terminator) {
        assert!(
            !self.sealed[self.cur.index()],
            "double-terminate block {:?}",
            self.cur
        );
        self.func.blocks[self.cur.index()].term = term;
        self.sealed[self.cur.index()] = true;
    }

    /// Terminate the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump(target));
    }

    /// Terminate the current block with a conditional branch.
    pub fn branch(&mut self, cond: impl Into<Operand>, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Terminator::Branch {
            cond: cond.into(),
            then_bb,
            else_bb,
        });
    }

    /// Terminate the current block with a return.
    pub fn ret(&mut self, val: Option<Operand>) {
        self.terminate(Terminator::Ret(val));
    }

    /// Finish the function. Any unterminated blocks keep their default
    /// `ret` terminator (useful for void functions).
    pub fn finish(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build: f(n) { s = 0; for(i=0;i<n;i++) s += i; return s; }
    fn build_sum() -> Function {
        let mut b = FunctionBuilder::new("sum", &[Ty::I64], Some(Ty::I64));
        let n = b.params()[0];
        let s = b.new_reg(Ty::I64);
        let i = b.new_reg(Ty::I64);
        b.mov(s, 0i64);
        b.mov(i, 0i64);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        let c = b.bin(BinOp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.bin_to(s, BinOp::Add, s, i);
        b.bin_to(i, BinOp::Add, i, 1i64);
        b.jump(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(s)));
        b.finish()
    }

    #[test]
    fn builds_loop_shape() {
        let f = build_sum();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.params.len(), 1);
        // entry jumps to header
        assert!(matches!(f.blocks[0].term, Terminator::Jump(BlockId(1))));
        // header branches
        assert!(matches!(f.blocks[1].term, Terminator::Branch { .. }));
        // body jumps back
        assert!(matches!(f.blocks[2].term, Terminator::Jump(BlockId(1))));
        // exit returns s
        assert!(matches!(f.blocks[3].term, Terminator::Ret(Some(_))));
    }

    #[test]
    #[should_panic(expected = "emit into terminated")]
    fn emit_after_terminate_panics() {
        let mut b = FunctionBuilder::new("f", &[], None);
        b.ret(None);
        b.mov(Reg(0), 1i64); // no such reg, but panic fires first
    }

    #[test]
    #[should_panic(expected = "double-terminate")]
    fn double_terminate_panics() {
        let mut b = FunctionBuilder::new("f", &[], None);
        b.ret(None);
        b.ret(None);
    }
}
