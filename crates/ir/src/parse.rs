//! Parser for the textual IR form produced by [`crate::print`], enabling
//! print → parse round trips (dump a module with `icc --emit-ir`, edit it,
//! load it back).
//!
//! Register types are not spelled at use sites, so the parser reconstructs
//! `reg_tys` by fixed-point inference over defining instructions (every
//! register has a single type in valid IR; the verifier re-checks after
//! parsing).

use crate::{
    ArrId, BinOp, Block, BlockId, ElemClass, FuncId, Function, Inst, Module, Operand, Reg,
    Terminator, Ty, UnOp,
};
use std::collections::HashMap;

/// A parse failure with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

fn bin_from_str(s: &str) -> Option<BinOp> {
    use BinOp::*;
    Some(match s {
        "add" => Add,
        "sub" => Sub,
        "mul" => Mul,
        "div" => Div,
        "rem" => Rem,
        "and" => And,
        "or" => Or,
        "xor" => Xor,
        "shl" => Shl,
        "shr" => Shr,
        "fadd" => FAdd,
        "fsub" => FSub,
        "fmul" => FMul,
        "fdiv" => FDiv,
        "eq" => Eq,
        "ne" => Ne,
        "lt" => Lt,
        "le" => Le,
        "gt" => Gt,
        "ge" => Ge,
        "feq" => FEq,
        "fne" => FNe,
        "flt" => FLt,
        "fle" => FLe,
        "fgt" => FGt,
        "fge" => FGe,
        _ => return None,
    })
}

fn un_from_str(s: &str) -> Option<UnOp> {
    Some(match s {
        "neg" => UnOp::Neg,
        "not" => UnOp::Not,
        "fneg" => UnOp::FNeg,
        "i2f" => UnOp::I2F,
        "f2i" => UnOp::F2I,
        _ => return None,
    })
}

/// Parse an operand: `rN`, an integer, or a float (printed with `{:?}`,
/// so floats always contain `.`, `e`, `inf` or `NaN`).
fn parse_operand(s: &str, line: usize) -> Result<Operand, ParseError> {
    let s = s.trim();
    if let Some(n) = s.strip_prefix('r') {
        if let Ok(i) = n.parse::<u32>() {
            return Ok(Operand::Reg(Reg(i)));
        }
    }
    if let Ok(v) = s.parse::<i64>() {
        return Ok(Operand::ImmI(v));
    }
    if let Ok(v) = s.parse::<f64>() {
        return Ok(Operand::ImmF(v));
    }
    err(line, format!("bad operand `{s}`"))
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, ParseError> {
    match parse_operand(s, line)? {
        Operand::Reg(r) => Ok(r),
        _ => err(line, format!("expected register, got `{s}`")),
    }
}

/// Split `a, b, c` at top level (no nesting in our format).
fn commas(s: &str) -> Vec<&str> {
    s.split(',')
        .map(|p| p.trim())
        .filter(|p| !p.is_empty())
        .collect()
}

/// Parse a whole module from the textual form.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let mut module = Module::new("parsed");
    let mut array_ids: HashMap<String, ArrId> = HashMap::new();
    let mut entry_name = String::new();

    // First pass: header, arrays, and function signatures (so calls can
    // reference functions defined later).
    let mut func_names: Vec<String> = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("fn ") {
            if let Some(name) = rest.split('(').next() {
                func_names.push(name.trim().to_string());
            }
        }
    }
    let func_id = |name: &str, line: usize| -> Result<FuncId, ParseError> {
        func_names
            .iter()
            .position(|n| n == name)
            .map(|i| FuncId(i as u32))
            .ok_or(ParseError {
                line,
                message: format!("unknown function `{name}`"),
            })
    };

    #[derive(Default)]
    struct FnBuild {
        name: String,
        params: Vec<Reg>,
        param_tys: Vec<(Reg, Ty)>,
        ret_ty: Option<Ty>,
        blocks: Vec<Block>,
    }
    let mut current: Option<FnBuild> = None;
    let mut finished: Vec<FnBuild> = Vec::new();

    for (ln, raw) in text.lines().enumerate() {
        let lineno = ln + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("module ") {
            let mut parts = rest.split_whitespace();
            if let Some(name) = parts.next() {
                module.name = name.to_string();
            }
            if let Some(e) = rest.split("entry: ").nth(1) {
                entry_name = e.trim_end_matches(')').to_string();
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("array ") {
            // `array NAME: Class x LEN (NB elems)`
            let (name, spec) = rest.split_once(':').ok_or(ParseError {
                line: lineno,
                message: "bad array header".into(),
            })?;
            let mut parts = spec.split_whitespace();
            let class = match parts.next() {
                Some("Int") => ElemClass::Int,
                Some("Float") => ElemClass::Float,
                Some("Ptr") => ElemClass::Ptr,
                other => return err(lineno, format!("bad array class {other:?}")),
            };
            parts.next(); // 'x'
            let len: usize = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or(ParseError {
                    line: lineno,
                    message: "bad array length".into(),
                })?;
            let elem_size: u8 = parts
                .next()
                .and_then(|v| v.trim_start_matches('(').trim_end_matches('B').parse().ok())
                .unwrap_or(8);
            let id = module.add_array(name.trim().to_string(), class, len);
            module.arrays[id.index()].elem_size = elem_size;
            array_ids.insert(name.trim().to_string(), id);
            continue;
        }
        if let Some(rest) = line.strip_prefix("fn ") {
            // `fn name(r0: I64, r1: F64) -> Some(I64) {`
            let (name, rest) = rest.split_once('(').ok_or(ParseError {
                line: lineno,
                message: "bad fn header".into(),
            })?;
            let (params_s, rest) = rest.split_once(')').ok_or(ParseError {
                line: lineno,
                message: "bad fn params".into(),
            })?;
            let mut fb = FnBuild {
                name: name.trim().to_string(),
                ..Default::default()
            };
            for p in commas(params_s) {
                let (r, t) = p.split_once(':').ok_or(ParseError {
                    line: lineno,
                    message: format!("bad param `{p}`"),
                })?;
                let reg = parse_reg(r, lineno)?;
                let ty = match t.trim() {
                    "I64" => Ty::I64,
                    "F64" => Ty::F64,
                    other => return err(lineno, format!("bad type `{other}`")),
                };
                fb.params.push(reg);
                fb.param_tys.push((reg, ty));
            }
            fb.ret_ty = if rest.contains("Some(I64)") {
                Some(Ty::I64)
            } else if rest.contains("Some(F64)") {
                Some(Ty::F64)
            } else {
                None
            };
            current = Some(fb);
            continue;
        }
        if line == "}" {
            if let Some(fb) = current.take() {
                finished.push(fb);
            }
            continue;
        }
        if let Some(bb) = line.strip_prefix("bb") {
            if bb.ends_with(':') {
                if let Some(fb) = current.as_mut() {
                    fb.blocks.push(Block::new());
                }
                continue;
            }
        }
        // Instruction or terminator inside the current block.
        let Some(fb) = current.as_mut() else {
            return err(lineno, format!("statement outside function: `{line}`"));
        };
        let Some(block) = fb.blocks.last_mut() else {
            return err(lineno, "instruction before any block label");
        };

        // Terminators.
        if let Some(t) = line.strip_prefix("jump bb") {
            let id: u32 = t.parse().map_err(|_| ParseError {
                line: lineno,
                message: "bad jump target".into(),
            })?;
            block.term = Terminator::Jump(BlockId(id));
            continue;
        }
        if let Some(t) = line.strip_prefix("br ") {
            let parts = commas(t);
            if parts.len() != 3 {
                return err(lineno, "br needs cond, then, else");
            }
            let cond = parse_operand(parts[0], lineno)?;
            let tb: u32 = parts[1]
                .trim_start_matches("bb")
                .parse()
                .map_err(|_| ParseError {
                    line: lineno,
                    message: "bad br target".into(),
                })?;
            let eb: u32 = parts[2]
                .trim_start_matches("bb")
                .parse()
                .map_err(|_| ParseError {
                    line: lineno,
                    message: "bad br target".into(),
                })?;
            block.term = Terminator::Branch {
                cond,
                then_bb: BlockId(tb),
                else_bb: BlockId(eb),
            };
            continue;
        }
        if line == "ret" {
            block.term = Terminator::Ret(None);
            continue;
        }
        if let Some(v) = line.strip_prefix("ret ") {
            block.term = Terminator::Ret(Some(parse_operand(v, lineno)?));
            continue;
        }

        // `store arr[idx] = val`
        if let Some(rest) = line.strip_prefix("store ") {
            let (lhs, val) = rest.split_once('=').ok_or(ParseError {
                line: lineno,
                message: "bad store".into(),
            })?;
            let (arr_name, idx_s) =
                lhs.trim()
                    .trim_end_matches(']')
                    .split_once('[')
                    .ok_or(ParseError {
                        line: lineno,
                        message: "bad store target".into(),
                    })?;
            let arr = *array_ids.get(arr_name.trim()).ok_or(ParseError {
                line: lineno,
                message: format!("unknown array `{arr_name}`"),
            })?;
            block.insts.push(Inst::Store {
                arr,
                idx: parse_operand(idx_s, lineno)?,
                val: parse_operand(val, lineno)?,
            });
            continue;
        }

        // Void call: `call name(args)`
        if let Some(rest) = line.strip_prefix("call ") {
            let (name, args_s) = rest.split_once('(').ok_or(ParseError {
                line: lineno,
                message: "bad call".into(),
            })?;
            let args_s = args_s.trim_end_matches(')');
            let args: Result<Vec<Operand>, _> = commas(args_s)
                .into_iter()
                .map(|a| parse_operand(a, lineno))
                .collect();
            block.insts.push(Inst::Call {
                dst: None,
                callee: func_id(name.trim(), lineno)?,
                args: args?,
            });
            continue;
        }

        // `rN = <something>`
        let (dst_s, rhs) = line.split_once('=').ok_or(ParseError {
            line: lineno,
            message: format!("unrecognized statement `{line}`"),
        })?;
        let dst = parse_reg(dst_s, lineno)?;
        let rhs = rhs.trim();

        if let Some(rest) = rhs.strip_prefix("mov ") {
            block.insts.push(Inst::Mov {
                dst,
                src: parse_operand(rest, lineno)?,
            });
            continue;
        }
        if let Some(rest) = rhs.strip_prefix("load ") {
            let (arr_name, idx_s) =
                rest.trim_end_matches(']')
                    .split_once('[')
                    .ok_or(ParseError {
                        line: lineno,
                        message: "bad load".into(),
                    })?;
            let arr = *array_ids.get(arr_name.trim()).ok_or(ParseError {
                line: lineno,
                message: format!("unknown array `{arr_name}`"),
            })?;
            block.insts.push(Inst::Load {
                dst,
                arr,
                idx: parse_operand(idx_s, lineno)?,
            });
            continue;
        }
        if let Some(rest) = rhs.strip_prefix("call ") {
            let (name, args_s) = rest.split_once('(').ok_or(ParseError {
                line: lineno,
                message: "bad call".into(),
            })?;
            let args_s = args_s.trim_end_matches(')');
            let args: Result<Vec<Operand>, _> = commas(args_s)
                .into_iter()
                .map(|a| parse_operand(a, lineno))
                .collect();
            block.insts.push(Inst::Call {
                dst: Some(dst),
                callee: func_id(name.trim(), lineno)?,
                args: args?,
            });
            continue;
        }
        if let Some(rest) = rhs.strip_prefix("select ") {
            let parts = commas(rest);
            if parts.len() != 3 {
                return err(lineno, "select needs cond, t, f");
            }
            block.insts.push(Inst::Select {
                dst,
                cond: parse_operand(parts[0], lineno)?,
                t: parse_operand(parts[1], lineno)?,
                f: parse_operand(parts[2], lineno)?,
            });
            continue;
        }
        // Binary / unary op: `<op> a[, b]`
        let (opname, operands) = rhs.split_once(' ').ok_or(ParseError {
            line: lineno,
            message: format!("bad instruction `{rhs}`"),
        })?;
        let parts = commas(operands);
        if let Some(op) = bin_from_str(opname) {
            if parts.len() != 2 {
                return err(lineno, format!("`{opname}` needs two operands"));
            }
            block.insts.push(Inst::Bin {
                op,
                dst,
                a: parse_operand(parts[0], lineno)?,
                b: parse_operand(parts[1], lineno)?,
            });
            continue;
        }
        if let Some(op) = un_from_str(opname) {
            if parts.len() != 1 {
                return err(lineno, format!("`{opname}` needs one operand"));
            }
            block.insts.push(Inst::Un {
                op,
                dst,
                a: parse_operand(parts[0], lineno)?,
            });
            continue;
        }
        return err(lineno, format!("unknown opcode `{opname}`"));
    }

    // Materialize functions with inferred register types.
    // Two rounds: first create shells (so callee return types resolve),
    // then infer.
    let ret_tys: Vec<Option<Ty>> = finished.iter().map(|f| f.ret_ty).collect();
    for fb in finished {
        let mut max_reg = 0usize;
        for b in &fb.blocks {
            for i in &b.insts {
                if let Some(d) = i.def() {
                    max_reg = max_reg.max(d.index() + 1);
                }
                i.for_each_use(|op| {
                    if let Operand::Reg(r) = op {
                        max_reg = max_reg.max(r.index() + 1);
                    }
                });
            }
            b.term.for_each_use(|op| {
                if let Operand::Reg(r) = op {
                    max_reg = max_reg.max(r.index() + 1);
                }
            });
        }
        for &(r, _) in &fb.param_tys {
            max_reg = max_reg.max(r.index() + 1);
        }

        let mut reg_tys = vec![Ty::I64; max_reg];
        for &(r, t) in &fb.param_tys {
            reg_tys[r.index()] = t;
        }
        // Fixed-point inference from defs.
        let mut changed = true;
        while changed {
            changed = false;
            for b in &fb.blocks {
                for i in &b.insts {
                    let inferred: Option<(Reg, Ty)> = match i {
                        Inst::Bin { op, dst, .. } => Some((*dst, op.result_ty())),
                        Inst::Un { op, dst, .. } => Some((*dst, op.result_ty())),
                        Inst::Load { dst, arr, .. } => {
                            Some((*dst, module.arrays[arr.index()].class.reg_ty()))
                        }
                        Inst::Call {
                            dst: Some(d),
                            callee,
                            ..
                        } => ret_tys[callee.index()].map(|t| (*d, t)),
                        Inst::Mov { dst, src } => match src {
                            Operand::ImmF(_) => Some((*dst, Ty::F64)),
                            Operand::ImmI(_) => None, // keep default / other defs
                            Operand::Reg(r) => Some((*dst, reg_tys[r.index()])),
                        },
                        Inst::Select { dst, t, .. } => match t {
                            Operand::ImmF(_) => Some((*dst, Ty::F64)),
                            Operand::Reg(r) => Some((*dst, reg_tys[r.index()])),
                            _ => None,
                        },
                        _ => None,
                    };
                    if let Some((r, t)) = inferred {
                        if reg_tys[r.index()] != t {
                            reg_tys[r.index()] = t;
                            changed = true;
                        }
                    }
                }
            }
        }

        module.funcs.push(Function {
            name: fb.name,
            params: fb.params,
            reg_tys,
            blocks: if fb.blocks.is_empty() {
                vec![Block::new()]
            } else {
                fb.blocks
            },
            ret_ty: fb.ret_ty,
        });
    }

    if let Some(e) = module.func_by_name(&entry_name) {
        module.entry = e;
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::print::module_to_string;

    fn round_trip(m: &Module) -> Module {
        let text = module_to_string(m);
        let back = parse_module(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        crate::verify::verify_module(&back).unwrap_or_else(|e| panic!("{e}\n{text}"));
        back
    }

    #[test]
    fn round_trips_arith_and_memory() {
        let mut m = Module::new("demo");
        let arr = m.add_array("buf", ElemClass::Int, 16);
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        let x = b.bin(BinOp::Add, 2i64, 3i64);
        b.store(arr, 1i64, x);
        let y = b.load(Ty::I64, arr, 1i64);
        let z = b.un(UnOp::Neg, y);
        b.ret(Some(z.into()));
        m.add_func(b.finish());

        let back = round_trip(&m);
        assert_eq!(module_to_string(&m), module_to_string(&back));
    }

    #[test]
    fn round_trips_control_flow_and_calls() {
        let mut m = Module::new("demo");
        let mut cal = FunctionBuilder::new("helper", &[Ty::I64, Ty::F64], Some(Ty::F64));
        let p = cal.params()[1];
        cal.ret(Some(p.into()));
        let cid = m.add_func(cal.finish());

        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        let f = b.call(Ty::F64, cid, vec![Operand::ImmI(1), Operand::ImmF(2.5)]);
        let c = b.bin(BinOp::FGt, f, 1.0f64);
        let t = b.new_block();
        let e = b.new_block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.ret(Some(1i64.into()));
        b.switch_to(e);
        b.ret(Some(0i64.into()));
        let main = m.add_func(b.finish());
        m.entry = main;

        let back = round_trip(&m);
        assert_eq!(module_to_string(&m), module_to_string(&back));
        assert_eq!(back.funcs[main.index()].name, "main");
        assert_eq!(back.entry, main);
    }

    #[test]
    fn round_trips_compiled_workload() {
        // A realistic module straight from the frontend printer.
        let src = "float w[8]; int main() {
            float acc = 0.0;
            for (int i = 0; i < 8; i = i + 1) {
                w[i] = (float)i * 0.5;
                acc = acc + w[i];
            }
            return (int)acc;
        }";
        // ic-lang is a dev-dependency of other crates, not this one, so
        // build the equivalent via the printer of a hand-built module —
        // covered more broadly by the cross-crate round-trip test in the
        // workspace test suite.
        let mut m = Module::new("mini");
        let arr = m.add_array("w", ElemClass::Float, 8);
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        let i = b.new_reg(Ty::I64);
        let acc = b.new_reg(Ty::F64);
        b.mov(i, 0i64);
        b.mov(acc, 0.0f64);
        let h = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(h);
        b.switch_to(h);
        let c = b.bin(BinOp::Lt, i, 8i64);
        b.branch(c, body, exit);
        b.switch_to(body);
        let fi = b.un(UnOp::I2F, i);
        let v = b.bin(BinOp::FMul, fi, 0.5f64);
        b.store(arr, i, v);
        b.bin_to(acc, BinOp::FAdd, acc, v);
        b.bin_to(i, BinOp::Add, i, 1i64);
        b.jump(h);
        b.switch_to(exit);
        let r = b.un(UnOp::F2I, acc);
        b.ret(Some(r.into()));
        m.add_func(b.finish());
        let _ = src;

        let back = round_trip(&m);
        assert_eq!(module_to_string(&m), module_to_string(&back));
    }

    #[test]
    fn reports_errors_with_lines() {
        let bad = "fn main() -> None {\nbb0:\n  r0 = frobnicate 1, 2\n  ret\n}\n";
        let e = parse_module(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn elem_size_preserved() {
        let mut m = Module::new("demo");
        let a = m.add_array("p", ElemClass::Ptr, 4);
        m.arrays[a.index()].elem_size = 4; // post ptr-compress
        let mut b = FunctionBuilder::new("main", &[], None);
        b.ret(None);
        m.add_func(b.finish());
        let back = round_trip(&m);
        assert_eq!(back.arrays[0].elem_size, 4);
    }
}
