//! Control-flow-graph utilities: predecessors, reachability, and orderings.

use crate::{BlockId, Function};

/// Predecessor lists for every block, plus reachability from entry.
#[derive(Debug, Clone)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    reachable: Vec<bool>,
    rpo: Vec<BlockId>,
}

impl Cfg {
    /// Compute CFG facts for `f`.
    pub fn compute(f: &Function) -> Self {
        let n = f.blocks.len();
        let mut preds = vec![Vec::new(); n];
        for (id, b) in f.iter_blocks() {
            for s in b.term.successors() {
                preds[s.index()].push(id);
            }
        }
        // DFS from entry for reachability and postorder.
        let mut reachable = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with explicit "children pushed" state.
        let mut stack: Vec<(BlockId, bool)> = vec![(BlockId(0), false)];
        while let Some((b, expanded)) = stack.pop() {
            if expanded {
                post.push(b);
                continue;
            }
            if reachable[b.index()] {
                continue;
            }
            reachable[b.index()] = true;
            stack.push((b, true));
            // Push successors in reverse so the first successor is visited
            // first, giving a conventional ordering.
            let succs: Vec<_> = f.block(b).term.successors().collect();
            for s in succs.into_iter().rev() {
                if !reachable[s.index()] {
                    stack.push((s, false));
                }
            }
        }
        post.reverse();
        Cfg {
            preds,
            reachable,
            rpo: post,
        }
    }

    /// Predecessors of `b` (only predecessors that exist syntactically;
    /// includes edges from unreachable blocks).
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// True if `b` is reachable from the entry block.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable[b.index()]
    }

    /// Reverse postorder over reachable blocks (entry first).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of each block in RPO (`usize::MAX` if unreachable).
    pub fn rpo_index(&self) -> Vec<usize> {
        let mut idx = vec![usize::MAX; self.preds.len()];
        for (i, b) in self.rpo.iter().enumerate() {
            idx[b.index()] = i;
        }
        idx
    }

    /// Number of reachable blocks.
    pub fn num_reachable(&self) -> usize {
        self.rpo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::{BinOp, Ty};

    fn diamond() -> Function {
        // entry -> (then | else) -> join
        let mut b = FunctionBuilder::new("d", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.bin(BinOp::Gt, p, 0i64);
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(Some(p.into()));
        b.finish()
    }

    #[test]
    fn diamond_preds() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.preds(BlockId(0)), &[]);
        assert_eq!(cfg.preds(BlockId(1)), &[BlockId(0)]);
        assert_eq!(cfg.preds(BlockId(2)), &[BlockId(0)]);
        let mut jp = cfg.preds(BlockId(3)).to_vec();
        jp.sort();
        assert_eq!(jp, vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.rpo()[0], BlockId(0));
        assert_eq!(cfg.num_reachable(), 4);
        // join must come after both arms
        let idx = cfg.rpo_index();
        assert!(idx[3] > idx[1] && idx[3] > idx[2]);
    }

    #[test]
    fn unreachable_blocks_detected() {
        let mut f = diamond();
        // add a dangling block
        f.add_block();
        let cfg = Cfg::compute(&f);
        assert!(!cfg.is_reachable(BlockId(4)));
        assert_eq!(cfg.num_reachable(), 4);
    }
}
