//! # ic-ir — intermediate representation for the intelligent-compilers stack
//!
//! A compact three-address-code IR in the style of a classic optimizing
//! compiler's mid-end:
//!
//! * a [`Module`] holds functions and globally-declared typed arrays (the
//!   memory model: every load/store names an array and an element index);
//! * a [`Function`] is a list of [`Block`]s of straight-line [`Inst`]s ended
//!   by an explicit [`Terminator`] (no fallthrough);
//! * values live in function-local virtual registers ([`Reg`]) typed
//!   [`Ty::I64`] or [`Ty::F64`]. The IR is *not* SSA — registers may be
//!   redefined — which matches the era of the paper and keeps the thirteen
//!   optimization passes honest dataflow clients.
//!
//! The memory model is *typed arrays*: each array is a contiguous region at
//! a synthetic base address, and the cycle-level simulator in `ic-machine`
//! derives cache addresses as `base + index * elem_size`. Arrays carry an
//! [`ElemClass`]; `Ptr`-class arrays hold 64-bit index values that the
//! `ptr-compress` optimization may narrow to 4-byte elements when the
//! module's address space fits in 32 bits (see DESIGN.md §7).
//!
//! Submodules provide the standard analyses every pass needs: CFG utilities
//! ([`mod@cfg`]), dominators ([`dom`]), natural loops ([`loops`]), liveness
//! ([`liveness`]), a structural [`verify`]er, and a textual [`mod@print`]er
//! + [`parse`]r pair.

pub mod builder;
pub mod cfg;
pub mod dom;
pub mod intern;
pub mod liveness;
pub mod loops;
pub mod parse;
pub mod print;
pub mod rewrite;
pub mod verify;

use serde::{Deserialize, Serialize};

/// Index of a function within its [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// Index of a basic block within its [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// A function-local virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(pub u32);

/// Index of a global array within its [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArrId(pub u32);

impl FuncId {
    /// The function index as a `usize`, for container access.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl BlockId {
    /// The block index as a `usize`, for container access.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl Reg {
    /// The register index as a `usize`, for container access.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl ArrId {
    /// The array index as a `usize`, for container access.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Scalar register type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ty {
    /// 64-bit signed integer (also used for booleans: 0 / 1).
    I64,
    /// 64-bit IEEE-754 float.
    F64,
}

/// Class of the elements stored in a global array.
///
/// `Ptr` elements are integer indices that play the role of pointers in the
/// source program; they are the target of the `ptr-compress` optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElemClass {
    /// Plain integer data.
    Int,
    /// Floating-point data.
    Float,
    /// Pointer-like integer data (indices into other arrays).
    Ptr,
}

impl ElemClass {
    /// Register type produced by loading from an array of this class.
    pub fn reg_ty(self) -> Ty {
        match self {
            ElemClass::Float => Ty::F64,
            ElemClass::Int | ElemClass::Ptr => Ty::I64,
        }
    }
}

/// An instruction operand: a register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// Value of a virtual register.
    Reg(Reg),
    /// Integer immediate.
    ImmI(i64),
    /// Floating-point immediate.
    ImmF(f64),
}

impl Operand {
    /// Returns the register if this operand is one.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// Returns the integer immediate if this operand is one.
    pub fn as_imm_i(self) -> Option<i64> {
        match self {
            Operand::ImmI(v) => Some(v),
            _ => None,
        }
    }

    /// True if the operand is any immediate.
    pub fn is_imm(self) -> bool {
        !matches!(self, Operand::Reg(_))
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}
impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::ImmI(v)
    }
}
impl From<f64> for Operand {
    fn from(v: f64) -> Self {
        Operand::ImmF(v)
    }
}

/// Binary operations. Comparison operators produce `I64` 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    FAdd,
    FSub,
    FMul,
    FDiv,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    FEq,
    FNe,
    FLt,
    FLe,
    FGt,
    FGe,
}

impl BinOp {
    /// True for floating-point arithmetic/compare operations.
    pub fn is_float(self) -> bool {
        use BinOp::*;
        matches!(
            self,
            FAdd | FSub | FMul | FDiv | FEq | FNe | FLt | FLe | FGt | FGe
        )
    }

    /// True for comparison operations (result type is always `I64`).
    pub fn is_cmp(self) -> bool {
        use BinOp::*;
        matches!(
            self,
            Eq | Ne | Lt | Le | Gt | Ge | FEq | FNe | FLt | FLe | FGt | FGe
        )
    }

    /// Result register type.
    pub fn result_ty(self) -> Ty {
        use BinOp::*;
        match self {
            FAdd | FSub | FMul | FDiv => Ty::F64,
            _ => Ty::I64,
        }
    }

    /// Operand register type.
    pub fn operand_ty(self) -> Ty {
        if self.is_float() {
            Ty::F64
        } else {
            Ty::I64
        }
    }

    /// True if `a op b == b op a` for all inputs.
    pub fn is_commutative(self) -> bool {
        use BinOp::*;
        matches!(
            self,
            Add | Mul | And | Or | Xor | FAdd | FMul | Eq | Ne | FEq | FNe
        )
    }

    /// True if the operation has no side effects and never traps.
    ///
    /// `Div`/`Rem` trap on zero in our semantics (the interpreter reports a
    /// runtime error), so they are excluded from speculative motion.
    pub fn is_speculable(self) -> bool {
        !matches!(self, BinOp::Div | BinOp::Rem)
    }
}

/// Unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Integer negate.
    Neg,
    /// Logical not: `x == 0`.
    Not,
    /// Float negate.
    FNeg,
    /// Convert `I64` to `F64`.
    I2F,
    /// Truncate `F64` to `I64`.
    F2I,
}

impl UnOp {
    /// Result register type.
    pub fn result_ty(self) -> Ty {
        match self {
            UnOp::Neg | UnOp::Not | UnOp::F2I => Ty::I64,
            UnOp::FNeg | UnOp::I2F => Ty::F64,
        }
    }

    /// Operand register type.
    pub fn operand_ty(self) -> Ty {
        match self {
            UnOp::Neg | UnOp::Not | UnOp::I2F => Ty::I64,
            UnOp::FNeg | UnOp::F2I => Ty::F64,
        }
    }
}

/// A non-terminator instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// `dst = a op b`
    Bin {
        op: BinOp,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// `dst = op a`
    Un { op: UnOp, dst: Reg, a: Operand },
    /// `dst = src`
    Mov { dst: Reg, src: Operand },
    /// `dst = arr[idx]`
    Load { dst: Reg, arr: ArrId, idx: Operand },
    /// `arr[idx] = val`
    Store {
        arr: ArrId,
        idx: Operand,
        val: Operand,
    },
    /// `dst = callee(args...)` (dst is `None` for void calls)
    Call {
        dst: Option<Reg>,
        callee: FuncId,
        args: Vec<Operand>,
    },
    /// `dst = cond != 0 ? t : f` — produced by if-conversion.
    Select {
        dst: Reg,
        cond: Operand,
        t: Operand,
        f: Operand,
    },
}

impl Inst {
    /// The register defined by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Mov { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Select { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. } => None,
        }
    }

    /// Replace the defined register, if any.
    pub fn set_def(&mut self, new: Reg) {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Mov { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Select { dst, .. } => *dst = new,
            Inst::Call { dst, .. } => {
                if let Some(d) = dst {
                    *d = new;
                }
            }
            Inst::Store { .. } => {}
        }
    }

    /// Visit every operand read by this instruction.
    pub fn for_each_use(&self, mut f: impl FnMut(&Operand)) {
        match self {
            Inst::Bin { a, b, .. } => {
                f(a);
                f(b);
            }
            Inst::Un { a, .. } => f(a),
            Inst::Mov { src, .. } => f(src),
            Inst::Load { idx, .. } => f(idx),
            Inst::Store { idx, val, .. } => {
                f(idx);
                f(val);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Inst::Select { cond, t, f: fv, .. } => {
                f(cond);
                f(t);
                f(fv);
            }
        }
    }

    /// Mutably visit every operand read by this instruction.
    pub fn for_each_use_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Inst::Bin { a, b, .. } => {
                f(a);
                f(b);
            }
            Inst::Un { a, .. } => f(a),
            Inst::Mov { src, .. } => f(src),
            Inst::Load { idx, .. } => f(idx),
            Inst::Store { idx, val, .. } => {
                f(idx);
                f(val);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Inst::Select { cond, t, f: fv, .. } => {
                f(cond);
                f(t);
                f(fv);
            }
        }
    }

    /// Registers read by this instruction, collected.
    pub fn used_regs(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        self.for_each_use(|op| {
            if let Operand::Reg(r) = op {
                out.push(*r);
            }
        });
        out
    }

    /// True if the instruction writes memory or calls a function.
    pub fn has_side_effects(&self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::Call { .. })
    }

    /// True if the instruction can be removed when its result is dead.
    ///
    /// Loads are pure in our memory model (they cannot trap: indices are
    /// wrapped modulo array length by the interpreter), so a dead load is
    /// removable. Division is *not* removable-by-default because it traps
    /// on a zero divisor.
    pub fn is_removable_if_dead(&self) -> bool {
        match self {
            Inst::Store { .. } | Inst::Call { .. } => false,
            Inst::Bin { op, .. } => op.is_speculable(),
            _ => true,
        }
    }
}

/// A block terminator. Every block has exactly one; there is no fallthrough.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch on `cond != 0`.
    Branch {
        cond: Operand,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Return from the function.
    Ret(Option<Operand>),
}

impl Terminator {
    /// Visit every operand read by the terminator.
    pub fn for_each_use(&self, mut f: impl FnMut(&Operand)) {
        match self {
            Terminator::Branch { cond, .. } => f(cond),
            Terminator::Ret(Some(v)) => f(v),
            _ => {}
        }
    }

    /// Mutably visit every operand read by the terminator.
    pub fn for_each_use_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Terminator::Branch { cond, .. } => f(cond),
            Terminator::Ret(Some(v)) => f(v),
            _ => {}
        }
    }

    /// Successor blocks (0, 1 or 2).
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        let (a, b) = match self {
            Terminator::Jump(t) => (Some(*t), None),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => (Some(*then_bb), Some(*else_bb)),
            Terminator::Ret(_) => (None, None),
        };
        a.into_iter().chain(b)
    }

    /// Mutably visit every successor block id.
    pub fn for_each_succ_mut(&mut self, mut f: impl FnMut(&mut BlockId)) {
        match self {
            Terminator::Jump(t) => f(t),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                f(then_bb);
                f(else_bb);
            }
            Terminator::Ret(_) => {}
        }
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    pub insts: Vec<Inst>,
    pub term: Terminator,
}

impl Block {
    /// An empty block ending in `ret`.
    pub fn new() -> Self {
        Block {
            insts: Vec::new(),
            term: Terminator::Ret(None),
        }
    }
}

impl Default for Block {
    fn default() -> Self {
        Self::new()
    }
}

/// A function: registers, parameters and a block list (entry is block 0).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    pub name: String,
    /// Incoming parameters, bound to the first `params.len()` registers.
    pub params: Vec<Reg>,
    /// Type of each register, indexed by `Reg::index`.
    pub reg_tys: Vec<Ty>,
    pub blocks: Vec<Block>,
    pub ret_ty: Option<Ty>,
}

impl Function {
    /// The entry block id (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Allocate a fresh register of type `ty`.
    pub fn new_reg(&mut self, ty: Ty) -> Reg {
        let r = Reg(self.reg_tys.len() as u32);
        self.reg_tys.push(ty);
        r
    }

    /// Number of registers.
    pub fn num_regs(&self) -> usize {
        self.reg_tys.len()
    }

    /// Type of register `r`.
    pub fn reg_ty(&self, r: Reg) -> Ty {
        self.reg_tys[r.index()]
    }

    /// Total instruction count (excluding terminators).
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Append a new empty block and return its id.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(Block::new());
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Shared access to a block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterate over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }
}

/// A global array declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayDecl {
    pub name: String,
    pub class: ElemClass,
    /// Number of elements.
    pub len: usize,
    /// Bytes per element as seen by the cache model (8, or 4 after
    /// `ptr-compress` narrows a `Ptr`-class array).
    pub elem_size: u8,
}

/// A whole program: functions + global arrays + the entry point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    pub name: String,
    pub funcs: Vec<Function>,
    pub arrays: Vec<ArrayDecl>,
    /// Index of the entry function (conventionally `main`).
    pub entry: FuncId,
    /// True if the program's whole data footprint fits a 32-bit address
    /// space, making `ptr-compress` legal.
    pub small_addr_space: bool,
}

impl Module {
    /// An empty module with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            funcs: Vec::new(),
            arrays: Vec::new(),
            entry: FuncId(0),
            small_addr_space: true,
        }
    }

    /// Add a function; returns its id.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        self.funcs.push(f);
        FuncId(self.funcs.len() as u32 - 1)
    }

    /// Declare a global array; returns its id. `Ptr` and `Int`/`Float`
    /// arrays start at 8 bytes per element.
    pub fn add_array(&mut self, name: impl Into<String>, class: ElemClass, len: usize) -> ArrId {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            class,
            len,
            elem_size: 8,
        });
        ArrId(self.arrays.len() as u32 - 1)
    }

    /// Look up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Look up an array by name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrId> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .map(|i| ArrId(i as u32))
    }

    /// Shared access to a function.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutable access to a function.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Total instruction count across all functions.
    pub fn num_insts(&self) -> usize {
        self.funcs.iter().map(|f| f.num_insts()).sum()
    }

    /// Total data footprint in bytes under current element sizes.
    pub fn data_bytes(&self) -> u64 {
        self.arrays
            .iter()
            .map(|a| a.len as u64 * a.elem_size as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_conversions() {
        let r = Reg(3);
        assert_eq!(Operand::from(r).as_reg(), Some(r));
        assert_eq!(Operand::from(7i64).as_imm_i(), Some(7));
        assert!(Operand::from(1.5f64).is_imm());
        assert_eq!(Operand::Reg(r).as_imm_i(), None);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::FAdd.is_float());
        assert!(!BinOp::Add.is_float());
        assert!(BinOp::Eq.is_cmp());
        assert_eq!(BinOp::FLt.result_ty(), Ty::I64);
        assert_eq!(BinOp::FAdd.result_ty(), Ty::F64);
        assert!(BinOp::Add.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(!BinOp::Div.is_speculable());
        assert!(BinOp::Mul.is_speculable());
    }

    #[test]
    fn inst_def_and_uses() {
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: Reg(2),
            a: Operand::Reg(Reg(0)),
            b: Operand::ImmI(4),
        };
        assert_eq!(i.def(), Some(Reg(2)));
        assert_eq!(i.used_regs(), vec![Reg(0)]);
        assert!(!i.has_side_effects());

        let s = Inst::Store {
            arr: ArrId(0),
            idx: Operand::Reg(Reg(1)),
            val: Operand::Reg(Reg(2)),
        };
        assert_eq!(s.def(), None);
        assert!(s.has_side_effects());
        assert_eq!(s.used_regs(), vec![Reg(1), Reg(2)]);
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: Operand::Reg(Reg(0)),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        let succs: Vec<_> = t.successors().collect();
        assert_eq!(succs, vec![BlockId(1), BlockId(2)]);
        assert_eq!(Terminator::Ret(None).successors().count(), 0);
        assert_eq!(Terminator::Jump(BlockId(5)).successors().count(), 1);
    }

    #[test]
    fn module_registry() {
        let mut m = Module::new("t");
        let a = m.add_array("data", ElemClass::Int, 100);
        assert_eq!(m.array_by_name("data"), Some(a));
        assert_eq!(m.data_bytes(), 800);
        m.arrays[a.index()].elem_size = 4;
        assert_eq!(m.data_bytes(), 400);
    }

    #[test]
    fn function_reg_allocation() {
        let mut f = Function {
            name: "f".into(),
            params: vec![],
            reg_tys: vec![],
            blocks: vec![Block::new()],
            ret_ty: None,
        };
        let r0 = f.new_reg(Ty::I64);
        let r1 = f.new_reg(Ty::F64);
        assert_eq!(r0, Reg(0));
        assert_eq!(r1, Reg(1));
        assert_eq!(f.reg_ty(r1), Ty::F64);
        assert_eq!(f.num_regs(), 2);
    }
}
