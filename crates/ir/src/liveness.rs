//! Backward liveness dataflow over registers.
//!
//! Register sets are dense bitsets (`Vec<u64>` words) because functions in
//! this stack routinely have a few hundred virtual registers and liveness
//! is recomputed by several passes.

use crate::cfg::Cfg;
use crate::{Function, Reg};

/// A dense bitset over register indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegSet {
    words: Vec<u64>,
}

impl RegSet {
    /// Empty set sized for `n` registers.
    pub fn new(n: usize) -> Self {
        RegSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Insert register `r`; returns true if newly inserted.
    pub fn insert(&mut self, r: Reg) -> bool {
        let (w, b) = (r.index() / 64, r.index() % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        old != self.words[w]
    }

    /// Remove register `r`.
    pub fn remove(&mut self, r: Reg) {
        let (w, b) = (r.index() / 64, r.index() % 64);
        self.words[w] &= !(1 << b);
    }

    /// Membership test.
    pub fn contains(&self, r: Reg) -> bool {
        let (w, b) = (r.index() / 64, r.index() % 64);
        self.words[w] >> b & 1 == 1
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= old != *a;
        }
        changed
    }

    /// Number of registers in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no register is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate members in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w >> b & 1 == 1)
                .map(move |b| Reg((wi * 64 + b) as u32))
        })
    }
}

/// Per-block live-in/live-out sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    pub live_in: Vec<RegSet>,
    pub live_out: Vec<RegSet>,
}

impl Liveness {
    /// Solve the standard backward dataflow:
    /// `out[b] = ∪ in[s]`, `in[b] = use[b] ∪ (out[b] - def[b])`.
    pub fn compute(f: &Function, cfg: &Cfg) -> Self {
        let nb = f.blocks.len();
        let nr = f.num_regs();

        // Per-block upward-exposed uses and defs.
        let mut uses = vec![RegSet::new(nr); nb];
        let mut defs = vec![RegSet::new(nr); nb];
        for (id, b) in f.iter_blocks() {
            let (u, d) = (&mut uses[id.index()], &mut defs[id.index()]);
            for inst in &b.insts {
                inst.for_each_use(|op| {
                    if let crate::Operand::Reg(r) = op {
                        if !d.contains(*r) {
                            u.insert(*r);
                        }
                    }
                });
                if let Some(r) = inst.def() {
                    d.insert(r);
                }
            }
            b.term.for_each_use(|op| {
                if let crate::Operand::Reg(r) = op {
                    if !d.contains(*r) {
                        u.insert(*r);
                    }
                }
            });
        }

        let mut live_in = vec![RegSet::new(nr); nb];
        let mut live_out = vec![RegSet::new(nr); nb];

        // Iterate to fixpoint in reverse RPO for fast convergence.
        let order: Vec<_> = cfg.rpo().iter().rev().copied().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let bi = b.index();
                let mut out = RegSet::new(nr);
                for s in f.block(b).term.successors() {
                    out.union_with(&live_in[s.index()]);
                }
                let mut inn = out.clone();
                for r in defs[bi].iter() {
                    inn.remove(r);
                }
                inn.union_with(&uses[bi]);
                if out != live_out[bi] || inn != live_in[bi] {
                    live_out[bi] = out;
                    live_in[bi] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::{BinOp, BlockId, Operand, Ty};

    #[test]
    fn regset_basics() {
        let mut s = RegSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(Reg(0)));
        assert!(s.insert(Reg(129)));
        assert!(!s.insert(Reg(0)));
        assert!(s.contains(Reg(129)));
        assert_eq!(s.len(), 2);
        let members: Vec<_> = s.iter().collect();
        assert_eq!(members, vec![Reg(0), Reg(129)]);
        s.remove(Reg(0));
        assert!(!s.contains(Reg(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn regset_union() {
        let mut a = RegSet::new(10);
        let mut b = RegSet::new(10);
        a.insert(Reg(1));
        b.insert(Reg(2));
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b)); // idempotent
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn loop_carried_liveness() {
        // sum loop: s and i are live around the loop; n live into header.
        let mut b = FunctionBuilder::new("sum", &[Ty::I64], Some(Ty::I64));
        let n = b.params()[0];
        let s = b.new_reg(Ty::I64);
        let i = b.new_reg(Ty::I64);
        b.mov(s, 0i64);
        b.mov(i, 0i64);
        let h = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(h);
        b.switch_to(h);
        let c = b.bin(BinOp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.bin_to(s, BinOp::Add, s, i);
        b.bin_to(i, BinOp::Add, i, 1i64);
        b.jump(h);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(s)));
        let f = b.finish();

        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        let header_in = &lv.live_in[BlockId(1).index()];
        assert!(header_in.contains(n));
        assert!(header_in.contains(s));
        assert!(header_in.contains(i));
        // condition register is not live into the header
        assert!(!header_in.contains(c));
        // only s is live into exit
        let exit_in = &lv.live_in[BlockId(3).index()];
        assert!(exit_in.contains(s));
        assert!(!exit_in.contains(i));
    }

    #[test]
    fn dead_def_not_live() {
        let mut b = FunctionBuilder::new("f", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let dead = b.bin(BinOp::Add, p, 1i64);
        let _ = dead;
        b.ret(Some(p.into()));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(lv.live_out[0].is_empty());
        assert!(lv.live_in[0].contains(p));
    }
}
