//! Natural-loop detection from back edges in the dominator tree.

use crate::cfg::Cfg;
use crate::dom::Dominators;
use crate::{BlockId, Function};

/// A natural loop: a header, the back-edge sources (latches), and the set
/// of body blocks (header included).
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    pub header: BlockId,
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, header first.
    pub body: Vec<BlockId>,
}

impl NaturalLoop {
    /// True if `b` belongs to the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }

    /// Number of body blocks.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// A loop always has at least its header block.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// All natural loops of a function, with nesting information.
#[derive(Debug, Clone)]
pub struct LoopForest {
    pub loops: Vec<NaturalLoop>,
    /// Loop-nesting depth per block (0 = not in any loop).
    pub depth: Vec<u32>,
}

impl LoopForest {
    /// Find natural loops: for each back edge `n -> h` (where `h`
    /// dominates `n`), collect the blocks that reach `n` without passing
    /// through `h`. Loops sharing a header are merged.
    pub fn compute(f: &Function, cfg: &Cfg, dom: &Dominators) -> Self {
        let n = f.blocks.len();
        let mut by_header: Vec<Option<NaturalLoop>> = vec![None; n];

        for (id, b) in f.iter_blocks() {
            if !cfg.is_reachable(id) {
                continue;
            }
            for succ in b.term.successors() {
                if dom.dominates(succ, id) {
                    // back edge id -> succ
                    let header = succ;
                    let entry = by_header[header.index()].get_or_insert_with(|| NaturalLoop {
                        header,
                        latches: Vec::new(),
                        body: vec![header],
                    });
                    entry.latches.push(id);
                    // Walk predecessors from the latch up to the header.
                    let mut stack = vec![id];
                    while let Some(x) = stack.pop() {
                        let lp = by_header[header.index()].as_mut().unwrap();
                        if lp.body.contains(&x) {
                            continue;
                        }
                        lp.body.push(x);
                        for &p in cfg.preds(x) {
                            if cfg.is_reachable(p) {
                                stack.push(p);
                            }
                        }
                    }
                }
            }
        }

        let loops: Vec<NaturalLoop> = by_header.into_iter().flatten().collect();
        let mut depth = vec![0u32; n];
        for lp in &loops {
            for b in &lp.body {
                depth[b.index()] += 1;
            }
        }
        LoopForest { loops, depth }
    }

    /// Loops whose body contains no other loop's header (the innermost
    /// loops — the unrolling candidates).
    pub fn innermost(&self) -> Vec<&NaturalLoop> {
        self.loops
            .iter()
            .filter(|lp| {
                !self
                    .loops
                    .iter()
                    .any(|other| other.header != lp.header && lp.contains(other.header))
            })
            .collect()
    }

    /// Loop-nesting depth of block `b`.
    pub fn depth_of(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// Maximum nesting depth in the function.
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::{BinOp, Ty};

    /// Two nested counted loops.
    fn nested() -> Function {
        let mut b = FunctionBuilder::new("n2", &[Ty::I64], None);
        let n = b.params()[0];
        let i = b.new_reg(Ty::I64);
        let j = b.new_reg(Ty::I64);
        b.mov(i, 0i64);
        let oh = b.new_block(); // outer header (1)
        let ob = b.new_block(); // outer body / inner init (2)
        let ih = b.new_block(); // inner header (3)
        let ib = b.new_block(); // inner body (4)
        let ol = b.new_block(); // outer latch (5)
        let ex = b.new_block(); // exit (6)
        b.jump(oh);
        b.switch_to(oh);
        let c0 = b.bin(BinOp::Lt, i, n);
        b.branch(c0, ob, ex);
        b.switch_to(ob);
        b.mov(j, 0i64);
        b.jump(ih);
        b.switch_to(ih);
        let c1 = b.bin(BinOp::Lt, j, n);
        b.branch(c1, ib, ol);
        b.switch_to(ib);
        b.bin_to(j, BinOp::Add, j, 1i64);
        b.jump(ih);
        b.switch_to(ol);
        b.bin_to(i, BinOp::Add, i, 1i64);
        b.jump(oh);
        b.switch_to(ex);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn finds_both_loops_and_depths() {
        let f = nested();
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&f, &cfg);
        let forest = LoopForest::compute(&f, &cfg, &dom);
        assert_eq!(forest.loops.len(), 2);
        assert_eq!(forest.max_depth(), 2);
        // inner body has depth 2, outer header depth 1, exit 0
        assert_eq!(forest.depth_of(BlockId(4)), 2);
        assert_eq!(forest.depth_of(BlockId(1)), 1);
        assert_eq!(forest.depth_of(BlockId(6)), 0);
    }

    #[test]
    fn innermost_is_inner() {
        let f = nested();
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&f, &cfg);
        let forest = LoopForest::compute(&f, &cfg, &dom);
        let inner = forest.innermost();
        assert_eq!(inner.len(), 1);
        assert_eq!(inner[0].header, BlockId(3));
        assert_eq!(inner[0].latches, vec![BlockId(4)]);
        assert_eq!(inner[0].len(), 2);
    }

    #[test]
    fn straightline_has_no_loops() {
        let mut b = FunctionBuilder::new("s", &[], None);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&f, &cfg);
        let forest = LoopForest::compute(&f, &cfg, &dom);
        assert!(forest.loops.is_empty());
        assert_eq!(forest.max_depth(), 0);
    }
}
