//! Mechanical rewriting helpers shared by passes: register substitution,
//! block remapping, and compaction of unreachable blocks.

use crate::cfg::Cfg;
use crate::{BlockId, Function, Operand, Reg};
use std::collections::HashMap;

/// Replace every *use* of the registers in `map` (definitions untouched).
pub fn substitute_uses(f: &mut Function, map: &HashMap<Reg, Operand>) {
    if map.is_empty() {
        return;
    }
    for block in &mut f.blocks {
        for inst in &mut block.insts {
            inst.for_each_use_mut(|op| {
                if let Operand::Reg(r) = op {
                    if let Some(rep) = map.get(r) {
                        *op = *rep;
                    }
                }
            });
        }
        block.term.for_each_use_mut(|op| {
            if let Operand::Reg(r) = op {
                if let Some(rep) = map.get(r) {
                    *op = *rep;
                }
            }
        });
    }
}

/// Rename registers in both uses and definitions according to `map`
/// (registers not in the map are untouched).
pub fn rename_regs(f: &mut Function, map: &HashMap<Reg, Reg>) {
    if map.is_empty() {
        return;
    }
    for block in &mut f.blocks {
        for inst in &mut block.insts {
            if let Some(d) = inst.def() {
                if let Some(&nd) = map.get(&d) {
                    inst.set_def(nd);
                }
            }
            inst.for_each_use_mut(|op| {
                if let Operand::Reg(r) = op {
                    if let Some(&nr) = map.get(r) {
                        *op = Operand::Reg(nr);
                    }
                }
            });
        }
        block.term.for_each_use_mut(|op| {
            if let Operand::Reg(r) = op {
                if let Some(&nr) = map.get(r) {
                    *op = Operand::Reg(nr);
                }
            }
        });
    }
}

/// Redirect every edge into `from` to point at `to`.
pub fn redirect_edges(f: &mut Function, from: BlockId, to: BlockId) {
    for block in &mut f.blocks {
        block.term.for_each_succ_mut(|s| {
            if *s == from {
                *s = to;
            }
        });
    }
}

/// Delete blocks unreachable from entry, compacting ids. Returns the number
/// of blocks removed.
pub fn remove_unreachable_blocks(f: &mut Function) -> usize {
    let cfg = Cfg::compute(f);
    let n = f.blocks.len();
    let keep: Vec<bool> = (0..n)
        .map(|i| cfg.is_reachable(BlockId(i as u32)))
        .collect();
    let removed = keep.iter().filter(|k| !**k).count();
    if removed == 0 {
        return 0;
    }
    // Old id -> new id.
    let mut remap = vec![BlockId(0); n];
    let mut next = 0u32;
    for (i, &k) in keep.iter().enumerate() {
        if k {
            remap[i] = BlockId(next);
            next += 1;
        }
    }
    let mut idx = 0usize;
    f.blocks.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
    for block in &mut f.blocks {
        block.term.for_each_succ_mut(|s| {
            *s = remap[s.index()];
        });
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::{BinOp, Inst, Terminator, Ty};

    #[test]
    fn substitute_uses_replaces_only_uses() {
        let mut b = FunctionBuilder::new("f", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let x = b.bin(BinOp::Add, p, 1i64);
        let y = b.bin(BinOp::Add, x, x);
        b.ret(Some(y.into()));
        let mut f = b.finish();

        let mut map = HashMap::new();
        map.insert(x, Operand::ImmI(7));
        substitute_uses(&mut f, &map);

        // y = add 7, 7 now; x's own def remains.
        match &f.blocks[0].insts[1] {
            Inst::Bin { a, b, .. } => {
                assert_eq!(*a, Operand::ImmI(7));
                assert_eq!(*b, Operand::ImmI(7));
            }
            other => panic!("unexpected {:?}", other),
        }
        assert_eq!(f.blocks[0].insts[0].def(), Some(x));
    }

    #[test]
    fn rename_regs_hits_defs_and_uses() {
        let mut b = FunctionBuilder::new("f", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let x = b.bin(BinOp::Mul, p, 2i64);
        b.ret(Some(x.into()));
        let mut f = b.finish();
        let fresh = f.new_reg(Ty::I64);

        let mut map = HashMap::new();
        map.insert(x, fresh);
        rename_regs(&mut f, &map);

        assert_eq!(f.blocks[0].insts[0].def(), Some(fresh));
        match &f.blocks[0].term {
            Terminator::Ret(Some(Operand::Reg(r))) => assert_eq!(*r, fresh),
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn remove_unreachable_compacts_and_remaps() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let live = b.new_block(); // bb1
        b.jump(live);
        b.switch_to(live);
        b.ret(None);
        let mut f = b.finish();
        // Insert a dead block between them by appending then rewiring:
        let dead = f.add_block(); // bb2, unreachable
        f.blocks[dead.index()].term = Terminator::Jump(BlockId(1));

        let removed = remove_unreachable_blocks(&mut f);
        assert_eq!(removed, 1);
        assert_eq!(f.blocks.len(), 2);
        assert!(matches!(f.blocks[0].term, Terminator::Jump(BlockId(1))));
    }

    #[test]
    fn redirect_edges_rewrites_targets() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let a = b.new_block();
        let c = b.new_block();
        b.jump(a);
        b.switch_to(a);
        b.ret(None);
        b.switch_to(c);
        b.ret(None);
        let mut f = b.finish();
        redirect_edges(&mut f, a, c);
        assert!(matches!(f.blocks[0].term, Terminator::Jump(t) if t == c));
    }
}
