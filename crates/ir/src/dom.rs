//! Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

use crate::cfg::Cfg;
use crate::{BlockId, Function};

/// Immediate-dominator table for the reachable part of a function's CFG.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of block `b`; the entry block
    /// is its own idom; unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
}

impl Dominators {
    /// Compute dominators for `f` given its CFG.
    pub fn compute(f: &Function, cfg: &Cfg) -> Self {
        let n = f.blocks.len();
        let rpo = cfg.rpo();
        let rpo_idx = cfg.rpo_index();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if rpo.is_empty() {
            return Dominators { idom };
        }
        let entry = rpo[0];
        idom[entry.index()] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_idx[a.index()] > rpo_idx[b.index()] {
                    a = idom[a.index()].expect("processed block has idom");
                }
                while rpo_idx[b.index()] > rpo_idx[a.index()] {
                    b = idom[b.index()].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if !cfg.is_reachable(p) || idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom }
    }

    /// Immediate dominator of `b` (entry's idom is itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::{BinOp, Ty};

    /// entry(0) -> header(1) -> body(2) -> header; header -> exit(3)
    fn looped() -> Function {
        let mut b = FunctionBuilder::new("l", &[Ty::I64], None);
        let n = b.params()[0];
        let i = b.new_reg(Ty::I64);
        b.mov(i, 0i64);
        let h = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(h);
        b.switch_to(h);
        let c = b.bin(BinOp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.bin_to(i, BinOp::Add, i, 1i64);
        b.jump(h);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn loop_dominators() {
        let f = looped();
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&f, &cfg);
        assert_eq!(dom.idom(BlockId(0)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(1)));
        assert!(dom.dominates(BlockId(1), BlockId(2)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(2), BlockId(3)));
        assert!(dom.dominates(BlockId(2), BlockId(2)));
    }

    #[test]
    fn diamond_join_dominated_by_entry_only() {
        let mut b = FunctionBuilder::new("d", &[Ty::I64], None);
        let p = b.params()[0];
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.bin(BinOp::Gt, p, 0i64);
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dom = Dominators::compute(&f, &cfg);
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
    }
}
