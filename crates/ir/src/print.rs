//! Textual form of the IR, for debugging, logging and golden tests.

use crate::{BinOp, Function, Inst, Module, Operand, Terminator, UnOp};
use std::fmt::Write;

fn op_str(op: &Operand) -> String {
    match op {
        Operand::Reg(r) => format!("r{}", r.0),
        Operand::ImmI(v) => format!("{v}"),
        Operand::ImmF(v) => format!("{v:?}"),
    }
}

fn bin_str(op: BinOp) -> &'static str {
    use BinOp::*;
    match op {
        Add => "add",
        Sub => "sub",
        Mul => "mul",
        Div => "div",
        Rem => "rem",
        And => "and",
        Or => "or",
        Xor => "xor",
        Shl => "shl",
        Shr => "shr",
        FAdd => "fadd",
        FSub => "fsub",
        FMul => "fmul",
        FDiv => "fdiv",
        Eq => "eq",
        Ne => "ne",
        Lt => "lt",
        Le => "le",
        Gt => "gt",
        Ge => "ge",
        FEq => "feq",
        FNe => "fne",
        FLt => "flt",
        FLe => "fle",
        FGt => "fgt",
        FGe => "fge",
    }
}

fn un_str(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "neg",
        UnOp::Not => "not",
        UnOp::FNeg => "fneg",
        UnOp::I2F => "i2f",
        UnOp::F2I => "f2i",
    }
}

/// Render one instruction.
pub fn inst_to_string(m: &Module, inst: &Inst) -> String {
    match inst {
        Inst::Bin { op, dst, a, b } => {
            format!("r{} = {} {}, {}", dst.0, bin_str(*op), op_str(a), op_str(b))
        }
        Inst::Un { op, dst, a } => format!("r{} = {} {}", dst.0, un_str(*op), op_str(a)),
        Inst::Mov { dst, src } => format!("r{} = mov {}", dst.0, op_str(src)),
        Inst::Load { dst, arr, idx } => format!(
            "r{} = load {}[{}]",
            dst.0,
            m.arrays[arr.index()].name,
            op_str(idx)
        ),
        Inst::Store { arr, idx, val } => format!(
            "store {}[{}] = {}",
            m.arrays[arr.index()].name,
            op_str(idx),
            op_str(val)
        ),
        Inst::Call { dst, callee, args } => {
            let args: Vec<_> = args.iter().map(op_str).collect();
            let call = format!("call {}({})", m.funcs[callee.index()].name, args.join(", "));
            match dst {
                Some(d) => format!("r{} = {}", d.0, call),
                None => call,
            }
        }
        Inst::Select { dst, cond, t, f } => format!(
            "r{} = select {}, {}, {}",
            dst.0,
            op_str(cond),
            op_str(t),
            op_str(f)
        ),
    }
}

/// Render a function.
pub fn function_to_string(m: &Module, f: &Function) -> String {
    let mut s = String::new();
    let params: Vec<_> = f
        .params
        .iter()
        .map(|p| format!("r{}: {:?}", p.0, f.reg_ty(*p)))
        .collect();
    let _ = writeln!(
        s,
        "fn {}({}) -> {:?} {{",
        f.name,
        params.join(", "),
        f.ret_ty
    );
    for (bid, block) in f.iter_blocks() {
        let _ = writeln!(s, "bb{}:", bid.0);
        for inst in &block.insts {
            let _ = writeln!(s, "  {}", inst_to_string(m, inst));
        }
        let term = match &block.term {
            Terminator::Jump(t) => format!("jump bb{}", t.0),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => format!("br {}, bb{}, bb{}", op_str(cond), then_bb.0, else_bb.0),
            Terminator::Ret(Some(v)) => format!("ret {}", op_str(v)),
            Terminator::Ret(None) => "ret".into(),
        };
        let _ = writeln!(s, "  {}", term);
    }
    let _ = writeln!(s, "}}");
    s
}

/// Render a whole module.
pub fn module_to_string(m: &Module) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "module {} (entry: {})",
        m.name,
        m.funcs[m.entry.index()].name
    );
    for a in &m.arrays {
        let _ = writeln!(
            s,
            "array {}: {:?} x {} ({}B elems)",
            a.name, a.class, a.len, a.elem_size
        );
    }
    for f in &m.funcs {
        s.push('\n');
        s.push_str(&function_to_string(m, f));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::{ElemClass, Ty};

    #[test]
    fn prints_all_forms() {
        let mut m = Module::new("demo");
        let arr = m.add_array("buf", ElemClass::Int, 8);
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        let x = b.bin(crate::BinOp::Add, 1i64, 2i64);
        let y = b.un(crate::UnOp::Neg, x);
        b.store(arr, 0i64, y);
        let z = b.load(Ty::I64, arr, 0i64);
        b.ret(Some(z.into()));
        m.add_func(b.finish());

        let text = module_to_string(&m);
        assert!(text.contains("module demo"));
        assert!(text.contains("array buf: Int x 8 (8B elems)"));
        assert!(text.contains("= add 1, 2"));
        assert!(text.contains("store buf[0]"));
        assert!(text.contains("load buf[0]"));
        assert!(text.contains("ret r"));
    }

    #[test]
    fn prints_branches_and_calls() {
        let mut m = Module::new("demo");
        let mut cal = FunctionBuilder::new("callee", &[Ty::I64], Some(Ty::I64));
        let p = cal.params()[0];
        cal.ret(Some(p.into()));
        let cid = m.add_func(cal.finish());

        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        let v = b.call(Ty::I64, cid, vec![Operand::ImmI(5)]);
        let t = b.new_block();
        let e = b.new_block();
        b.branch(v, t, e);
        b.switch_to(t);
        b.ret(Some(1i64.into()));
        b.switch_to(e);
        b.ret(Some(0i64.into()));
        m.add_func(b.finish());

        let text = module_to_string(&m);
        assert!(text.contains("call callee(5)"));
        assert!(text.contains("br r"));
    }
}
