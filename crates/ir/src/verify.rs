//! Structural verifier. Run after every pass in debug/test builds to catch
//! IR corruption at the point it is introduced.

use crate::{BlockId, FuncId, Function, Inst, Module, Operand, Reg, Terminator, Ty};

/// A verification failure, with enough context to locate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    pub func: String,
    pub block: Option<BlockId>,
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.block {
            Some(b) => write!(f, "[{} bb{}] {}", self.func, b.0, self.message),
            None => write!(f, "[{}] {}", self.func, self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify a whole module. Checks:
/// * entry function exists and takes no parameters,
/// * every block target / callee / array / register index is in range,
/// * operand and result types are consistent with each opcode,
/// * call arity and argument types match the callee signature,
/// * `Ret` value presence matches the function's return type.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    if m.entry.index() >= m.funcs.len() {
        return Err(VerifyError {
            func: m.name.clone(),
            block: None,
            message: format!("entry {:?} out of range", m.entry),
        });
    }
    if !m.func(m.entry).params.is_empty() {
        return Err(VerifyError {
            func: m.func(m.entry).name.clone(),
            block: None,
            message: "entry function must take no parameters".into(),
        });
    }
    for f in &m.funcs {
        verify_function(m, f)?;
    }
    Ok(())
}

fn err(f: &Function, block: Option<BlockId>, message: String) -> VerifyError {
    VerifyError {
        func: f.name.clone(),
        block,
        message,
    }
}

/// Verify a single function against its module context.
pub fn verify_function(m: &Module, f: &Function) -> Result<(), VerifyError> {
    if f.blocks.is_empty() {
        return Err(err(f, None, "function has no blocks".into()));
    }
    for (i, &p) in f.params.iter().enumerate() {
        if p.index() >= f.num_regs() {
            return Err(err(f, None, format!("param {} register out of range", i)));
        }
    }

    let check_reg = |r: Reg, b: BlockId| -> Result<(), VerifyError> {
        if r.index() >= f.num_regs() {
            Err(err(f, Some(b), format!("register r{} out of range", r.0)))
        } else {
            Ok(())
        }
    };
    let op_ty = |op: &Operand| -> Option<Ty> {
        match op {
            Operand::Reg(r) => f.reg_tys.get(r.index()).copied(),
            Operand::ImmI(_) => Some(Ty::I64),
            Operand::ImmF(_) => Some(Ty::F64),
        }
    };
    let expect_ty = |op: &Operand, want: Ty, b: BlockId, what: &str| -> Result<(), VerifyError> {
        match op_ty(op) {
            Some(t) if t == want => Ok(()),
            Some(t) => Err(err(
                f,
                Some(b),
                format!("{what}: expected {:?}, got {:?}", want, t),
            )),
            None => Err(err(f, Some(b), format!("{what}: register out of range"))),
        }
    };

    for (bid, block) in f.iter_blocks() {
        for inst in &block.insts {
            // Range checks for every register mentioned.
            if let Some(d) = inst.def() {
                check_reg(d, bid)?;
            }
            let mut bad: Option<Reg> = None;
            inst.for_each_use(|op| {
                if let Operand::Reg(r) = op {
                    if r.index() >= f.num_regs() && bad.is_none() {
                        bad = Some(*r);
                    }
                }
            });
            if let Some(r) = bad {
                return Err(err(f, Some(bid), format!("use of r{} out of range", r.0)));
            }

            match inst {
                Inst::Bin { op, dst, a, b } => {
                    expect_ty(a, op.operand_ty(), bid, "binop lhs")?;
                    expect_ty(b, op.operand_ty(), bid, "binop rhs")?;
                    if f.reg_ty(*dst) != op.result_ty() {
                        return Err(err(f, Some(bid), "binop dst type mismatch".into()));
                    }
                }
                Inst::Un { op, dst, a } => {
                    expect_ty(a, op.operand_ty(), bid, "unop operand")?;
                    if f.reg_ty(*dst) != op.result_ty() {
                        return Err(err(f, Some(bid), "unop dst type mismatch".into()));
                    }
                }
                Inst::Mov { dst, src } => {
                    expect_ty(src, f.reg_ty(*dst), bid, "mov src")?;
                }
                Inst::Load { dst, arr, idx } => {
                    if arr.index() >= m.arrays.len() {
                        return Err(err(
                            f,
                            Some(bid),
                            format!("load from unknown array {:?}", arr),
                        ));
                    }
                    expect_ty(idx, Ty::I64, bid, "load index")?;
                    let want = m.arrays[arr.index()].class.reg_ty();
                    if f.reg_ty(*dst) != want {
                        return Err(err(f, Some(bid), "load dst type mismatch".into()));
                    }
                }
                Inst::Store { arr, idx, val } => {
                    if arr.index() >= m.arrays.len() {
                        return Err(err(
                            f,
                            Some(bid),
                            format!("store to unknown array {:?}", arr),
                        ));
                    }
                    expect_ty(idx, Ty::I64, bid, "store index")?;
                    expect_ty(
                        val,
                        m.arrays[arr.index()].class.reg_ty(),
                        bid,
                        "store value",
                    )?;
                }
                Inst::Call { dst, callee, args } => {
                    if callee.index() >= m.funcs.len() {
                        return Err(err(f, Some(bid), format!("call to unknown {:?}", callee)));
                    }
                    let target = m.func(FuncId(callee.0));
                    if args.len() != target.params.len() {
                        return Err(err(
                            f,
                            Some(bid),
                            format!(
                                "call to {}: {} args, expected {}",
                                target.name,
                                args.len(),
                                target.params.len()
                            ),
                        ));
                    }
                    for (a, &p) in args.iter().zip(&target.params) {
                        expect_ty(a, target.reg_ty(p), bid, "call arg")?;
                    }
                    match (dst, target.ret_ty) {
                        (Some(d), Some(rt)) if f.reg_ty(*d) != rt => {
                            return Err(err(f, Some(bid), "call dst type mismatch".into()));
                        }
                        (Some(_), Some(_)) => {}
                        (Some(_), None) => {
                            return Err(err(
                                f,
                                Some(bid),
                                format!("call captures result of void fn {}", target.name),
                            ));
                        }
                        _ => {}
                    }
                }
                Inst::Select {
                    dst,
                    cond,
                    t,
                    f: fv,
                } => {
                    expect_ty(cond, Ty::I64, bid, "select cond")?;
                    expect_ty(t, f.reg_ty(*dst), bid, "select then")?;
                    expect_ty(fv, f.reg_ty(*dst), bid, "select else")?;
                }
            }
        }

        match &block.term {
            Terminator::Jump(t) => {
                if t.index() >= f.blocks.len() {
                    return Err(err(f, Some(bid), format!("jump to unknown bb{}", t.0)));
                }
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                expect_ty(cond, Ty::I64, bid, "branch cond")?;
                for t in [then_bb, else_bb] {
                    if t.index() >= f.blocks.len() {
                        return Err(err(f, Some(bid), format!("branch to unknown bb{}", t.0)));
                    }
                }
            }
            Terminator::Ret(v) => match (v, f.ret_ty) {
                (Some(op), Some(rt)) => expect_ty(op, rt, bid, "return value")?,
                (None, Some(_)) => {
                    return Err(err(f, Some(bid), "missing return value".into()));
                }
                (Some(_), None) => {
                    return Err(err(f, Some(bid), "void function returns a value".into()));
                }
                (None, None) => {}
            },
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::{BinOp, ElemClass, Operand};

    fn module_with(f: Function) -> Module {
        let mut m = Module::new("t");
        m.add_func(f);
        m
    }

    #[test]
    fn accepts_wellformed() {
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        let x = b.bin(BinOp::Add, 1i64, 2i64);
        b.ret(Some(x.into()));
        let m = module_with(b.finish());
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        let x = b.bin(BinOp::FAdd, 1.0f64, 2.0f64);
        b.ret(Some(x.into())); // F64 returned from I64 fn
        let m = module_with(b.finish());
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("return value"), "{}", e);
    }

    #[test]
    fn rejects_bad_block_target() {
        let mut b = FunctionBuilder::new("main", &[], None);
        b.ret(None);
        let mut f = b.finish();
        f.blocks[0].term = Terminator::Jump(BlockId(9));
        let m = module_with(f);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_unknown_array() {
        let mut b = FunctionBuilder::new("main", &[], None);
        b.store(crate::ArrId(0), 0i64, 1i64);
        b.ret(None);
        let m = module_with(b.finish());
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut m = Module::new("t");
        let mut cal = FunctionBuilder::new("callee", &[Ty::I64], Some(Ty::I64));
        let p = cal.params()[0];
        cal.ret(Some(p.into()));
        let callee = m.add_func(cal.finish());

        let mut mainb = FunctionBuilder::new("main", &[], None);
        mainb.call_void(callee, vec![]); // wrong arity AND captures nothing from non-void: arity fires first
        mainb.ret(None);
        let main = m.add_func(mainb.finish());
        m.entry = main;
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("args"), "{}", e);
    }

    #[test]
    fn rejects_entry_with_params() {
        let mut b = FunctionBuilder::new("main", &[Ty::I64], None);
        b.ret(None);
        let m = module_with(b.finish());
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn accepts_array_ops() {
        let mut m = Module::new("t");
        let arr = m.add_array("a", ElemClass::Int, 16);
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        b.store(arr, 3i64, 42i64);
        let v = b.load(Ty::I64, arr, 3i64);
        b.ret(Some(Operand::Reg(v)));
        let f = m.add_func(b.finish());
        m.entry = f;
        assert!(verify_module(&m).is_ok());
    }
}
