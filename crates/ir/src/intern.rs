//! A tiny global string interner for identifiers that cross hot paths.
//!
//! The simulator's error values and decoded programs refer to function
//! names millions of times but only ever *create* a handful of distinct
//! strings (one per function in a module). Interning turns each name into
//! a copyable [`Symbol`] — a `u32` ticket into a process-wide table — so
//! hot loops can carry "which function" without cloning a `String`, and
//! resolve back to text only when a human-facing message is rendered.
//!
//! Interned strings are leaked deliberately: the set is bounded by the
//! number of distinct function names seen by the process, which is tiny
//! and reusable across compilations of the same workload.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// A process-wide interned string. Copy, compare and hash like an integer;
/// resolve with [`Symbol::as_str`] only at display time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            names: Vec::new(),
        })
    })
}

/// Intern `name`, returning its stable [`Symbol`]. Idempotent: the same
/// string always yields the same symbol for the life of the process.
pub fn intern(name: &str) -> Symbol {
    let mut i = interner().lock().expect("interner poisoned");
    if let Some(&id) = i.map.get(name) {
        return Symbol(id);
    }
    let id = i.names.len() as u32;
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    i.names.push(leaked);
    i.map.insert(leaked, id);
    Symbol(id)
}

impl Symbol {
    /// The interned text. Never allocates.
    pub fn as_str(self) -> &'static str {
        interner().lock().expect("interner poisoned").names[self.0 as usize]
    }

    /// The raw ticket, for dense side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_round_trips() {
        let a = intern("main");
        let b = intern("main");
        let c = intern("helper");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "main");
        assert_eq!(c.as_str(), "helper");
        assert_eq!(format!("{a}"), "main");
    }

    #[test]
    fn symbols_are_stable_across_threads() {
        let first = intern("threaded");
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| intern("threaded")))
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), first);
        }
    }
}
