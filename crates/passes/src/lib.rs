//! # ic-passes — the optimization passes and the paper's 13-opt space
//!
//! Every optimization the intelligent compiler can sequence lives here as
//! an [`Opt`]. The Fig. 2 experiments search over length-5 sequences drawn
//! from [`Opt::PAPER_13`] — ten scalar/loop/CFG optimizations plus three
//! unrolling factors, with unrolling allowed at most once per sequence
//! (exactly the setup described in the paper's footnote 1).
//!
//! Passes are deliberately *order-sensitive* — e.g. `const-fold` only
//! fires on operands `const-prop` has already materialized, `schedule`
//! benefits from the straight-line code `unroll` creates, `dce` cleans up
//! what the others leave behind — because the whole point of the paper is
//! that pass ordering is a rugged search space worth learning over.
//!
//! All passes preserve observable semantics (return value and final
//! memory); the differential test-suite in this crate checks that on real
//! MinC programs by executing before/after on the `ic-machine` simulator.

pub mod const_fold;
pub mod const_prop;
pub mod copy_prop;
pub mod cse;
pub mod dce;
pub mod if_convert;
pub mod inline;
pub mod licm;
pub mod peephole;
pub mod prefix_cache;
pub mod ptr_compress;
pub mod schedule;
pub mod simplify_cfg;
pub mod strength_red;
pub mod unroll;

use ic_ir::Module;
use serde::{Deserialize, Serialize};

pub use ic_obs::{PassProfiler, PassStats};
pub use prefix_cache::{CompileCacheStats, PrefixCache, PrefixCacheConfig};

/// A named optimization. The unit the optimization controller, the search
/// strategies and the learned models all traffic in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Opt {
    ConstProp,
    ConstFold,
    CopyProp,
    Dce,
    Cse,
    Licm,
    StrengthRed,
    Inline,
    SimplifyCfg,
    Schedule,
    Peephole,
    PtrCompress,
    IfConvert,
    Unroll2,
    Unroll4,
    Unroll8,
}

impl Opt {
    /// The 13-optimization space of the paper's Fig. 2 (ten base
    /// optimizations + three unroll factors).
    pub const PAPER_13: [Opt; 13] = [
        Opt::ConstProp,
        Opt::ConstFold,
        Opt::CopyProp,
        Opt::Dce,
        Opt::Cse,
        Opt::Licm,
        Opt::StrengthRed,
        Opt::Inline,
        Opt::SimplifyCfg,
        Opt::Schedule,
        Opt::Unroll2,
        Opt::Unroll4,
        Opt::Unroll8,
    ];

    /// Every optimization in the registry.
    pub const ALL: [Opt; 16] = [
        Opt::ConstProp,
        Opt::ConstFold,
        Opt::CopyProp,
        Opt::Dce,
        Opt::Cse,
        Opt::Licm,
        Opt::StrengthRed,
        Opt::Inline,
        Opt::SimplifyCfg,
        Opt::Schedule,
        Opt::Peephole,
        Opt::PtrCompress,
        Opt::IfConvert,
        Opt::Unroll2,
        Opt::Unroll4,
        Opt::Unroll8,
    ];

    /// Stable command-line name.
    pub fn name(self) -> &'static str {
        match self {
            Opt::ConstProp => "const-prop",
            Opt::ConstFold => "const-fold",
            Opt::CopyProp => "copy-prop",
            Opt::Dce => "dce",
            Opt::Cse => "cse",
            Opt::Licm => "licm",
            Opt::StrengthRed => "strength-red",
            Opt::Inline => "inline",
            Opt::SimplifyCfg => "simplify-cfg",
            Opt::Schedule => "schedule",
            Opt::Peephole => "peephole",
            Opt::PtrCompress => "ptr-compress",
            Opt::IfConvert => "if-convert",
            Opt::Unroll2 => "unroll2",
            Opt::Unroll4 => "unroll4",
            Opt::Unroll8 => "unroll8",
        }
    }

    /// Parse a name produced by [`Opt::name`].
    pub fn from_name(s: &str) -> Option<Opt> {
        Opt::ALL.into_iter().find(|o| o.name() == s)
    }

    /// True for the unrolling variants (at most one may appear in a
    /// paper-space sequence).
    pub fn is_unroll(self) -> bool {
        matches!(self, Opt::Unroll2 | Opt::Unroll4 | Opt::Unroll8)
    }

    /// Apply this optimization to `module`. Returns true if anything
    /// changed (useful for fixpoint drivers and enable/disable analyses).
    pub fn apply(self, module: &mut Module) -> bool {
        match self {
            Opt::ConstProp => const_prop::run(module),
            Opt::ConstFold => const_fold::run(module),
            Opt::CopyProp => copy_prop::run(module),
            Opt::Dce => dce::run(module),
            Opt::Cse => cse::run(module),
            Opt::Licm => licm::run(module),
            Opt::StrengthRed => strength_red::run(module),
            Opt::Inline => inline::run(module),
            Opt::SimplifyCfg => simplify_cfg::run(module),
            Opt::Schedule => schedule::run(module),
            Opt::Peephole => peephole::run(module),
            Opt::PtrCompress => ptr_compress::run(module),
            Opt::IfConvert => if_convert::run(module),
            Opt::Unroll2 => unroll::run(module, 2),
            Opt::Unroll4 => unroll::run(module, 4),
            Opt::Unroll8 => unroll::run(module, 8),
        }
    }

    /// [`Opt::apply`] plus a profiling record: wall time and the
    /// module's instruction counts around the pass go to `profiler`.
    /// Observation-only — the transformed module is bit-identical to an
    /// unprofiled [`Opt::apply`].
    pub fn apply_profiled(self, module: &mut Module, profiler: &PassProfiler) -> bool {
        let insts_in = module_insts(module);
        let started = std::time::Instant::now();
        let changed = self.apply(module);
        let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // An unchanged module has unchanged size — skip the second walk.
        let insts_out = if changed {
            module_insts(module)
        } else {
            insts_in
        };
        // `self as usize` is this pass's row in a registry-ordered
        // profiler ([`profiler`] registers names in `Opt::ALL` order,
        // which matches the discriminants); `record_at` verifies.
        profiler.record_at(
            self as usize,
            self.name(),
            changed,
            wall_ns,
            insts_in,
            insts_out,
        );
        changed
    }
}

/// Total instructions in the module (the profiler's IR-size measure).
pub fn module_insts(module: &Module) -> u64 {
    module
        .funcs
        .iter()
        .flat_map(|f| &f.blocks)
        .map(|b| b.insts.len() as u64)
        .sum()
}

/// A [`PassProfiler`] pre-registered with every pass in [`Opt::ALL`],
/// so profile rows cover the whole registry — passes that never ran
/// report zero calls rather than being absent.
pub fn profiler() -> PassProfiler {
    let names: Vec<&'static str> = Opt::ALL.iter().map(|o| o.name()).collect();
    PassProfiler::with_passes(&names)
}

impl std::fmt::Display for Opt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Apply a sequence of optimizations in order, verifying the module after
/// each pass in debug builds. Returns the number of passes that reported
/// a change.
pub fn apply_sequence(module: &mut Module, seq: &[Opt]) -> usize {
    let mut changed = 0;
    for &opt in seq {
        if opt.apply(module) {
            changed += 1;
        }
        debug_assert!(
            ic_ir::verify::verify_module(module).is_ok(),
            "pass {} corrupted the module: {:?}",
            opt.name(),
            ic_ir::verify::verify_module(module).err()
        );
    }
    changed
}

/// [`apply_sequence`] with per-pass profiling into `profiler`. The
/// resulting module and changed count are bit-identical to the
/// unprofiled path (pinned by the workspace's determinism test).
pub fn apply_sequence_profiled(module: &mut Module, seq: &[Opt], profiler: &PassProfiler) -> usize {
    let mut changed = 0;
    for &opt in seq {
        if opt.apply_profiled(module, profiler) {
            changed += 1;
        }
        debug_assert!(
            ic_ir::verify::verify_module(module).is_ok(),
            "pass {} corrupted the module: {:?}",
            opt.name(),
            ic_ir::verify::verify_module(module).err()
        );
    }
    changed
}

/// The fixed aggressive pipeline standing in for PathScale `-Ofast`
/// (everything on, cache-oblivious; see DESIGN.md §2).
pub fn ofast_sequence() -> Vec<Opt> {
    vec![
        Opt::Inline,
        Opt::ConstProp,
        Opt::ConstFold,
        Opt::CopyProp,
        Opt::Cse,
        Opt::Licm,
        Opt::StrengthRed,
        Opt::Peephole,
        Opt::Unroll4,
        Opt::SimplifyCfg,
        Opt::Dce,
        Opt::Schedule,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for o in Opt::ALL {
            assert_eq!(Opt::from_name(o.name()), Some(o));
        }
        assert_eq!(Opt::from_name("nonsense"), None);
    }

    #[test]
    fn paper_13_has_exactly_three_unrolls() {
        let unrolls = Opt::PAPER_13.iter().filter(|o| o.is_unroll()).count();
        assert_eq!(unrolls, 3);
        assert_eq!(Opt::PAPER_13.len(), 13);
    }

    #[test]
    fn ofast_is_verifiable_on_a_real_program() {
        let mut m = ic_lang::compile(
            "t",
            "int work(int n) { int s = 0; for (int i = 0; i < n; i = i + 1) s = s + i * 2; return s; }
             int main() { return work(50); }",
        )
        .unwrap();
        apply_sequence(&mut m, &ofast_sequence());
        ic_ir::verify::verify_module(&m).unwrap();
    }
}
