//! Local common-subexpression elimination by value numbering.
//!
//! Within a block, pure expressions over the *same register versions* are
//! computed once; later occurrences become `Mov` from the first result.
//! Register versions are tracked so redefinitions invalidate correctly in
//! this non-SSA IR. Loads participate until the next store or call
//! (which conservatively invalidate all memory value numbers).

use ic_ir::{ArrId, BinOp, Inst, Module, Operand, Reg, UnOp};
use std::collections::HashMap;

/// A version-qualified operand for hashing expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum VOp {
    Reg(Reg, u32),
    ImmI(i64),
    /// Bit pattern, so `-0.0` and `0.0` stay distinct.
    ImmF(u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    Bin(BinOp, VOp, VOp),
    Un(UnOp, VOp),
    Load(ArrId, VOp),
}

/// Run over every function; returns true if any expression was reused.
pub fn run(module: &mut Module) -> bool {
    let mut changed = false;
    for f in &mut module.funcs {
        let nregs = f.num_regs();
        for block in &mut f.blocks {
            let mut version = vec![0u32; nregs];
            let mut table: HashMap<Key, Reg> = HashMap::new();
            let vop = |version: &[u32], op: &Operand| -> VOp {
                match op {
                    Operand::Reg(r) => VOp::Reg(*r, version[r.index()]),
                    Operand::ImmI(v) => VOp::ImmI(*v),
                    Operand::ImmF(v) => VOp::ImmF(v.to_bits()),
                }
            };
            for inst in &mut block.insts {
                let key = match inst {
                    Inst::Bin { op, a, b, .. } if op.is_speculable() => {
                        // Canonicalize commutative operands for better hits.
                        let (va, vb) = (vop(&version, a), vop(&version, b));
                        let (va, vb) = if op.is_commutative() && vb < va {
                            (vb, va)
                        } else {
                            (va, vb)
                        };
                        Some(Key::Bin(*op, va, vb))
                    }
                    Inst::Un { op, a, .. } => Some(Key::Un(*op, vop(&version, a))),
                    Inst::Load { arr, idx, .. } => Some(Key::Load(*arr, vop(&version, idx))),
                    _ => None,
                };

                // Reuse check happens with *pre-def* versions; entries
                // whose result register is still intact are valid because
                // clobbers purge them below.
                let reused = if let (Some(key), Some(dst)) = (&key, inst.def()) {
                    if let Some(&prev) = table.get(key) {
                        *inst = Inst::Mov {
                            dst,
                            src: Operand::Reg(prev),
                        };
                        changed = true;
                        true
                    } else {
                        false
                    }
                } else {
                    false
                };

                // Invalidate on side effects and redefinitions.
                if matches!(inst, Inst::Store { .. } | Inst::Call { .. }) {
                    table.retain(|k, _| !matches!(k, Key::Load(..)));
                }
                if let Some(d) = inst.def() {
                    version[d.index()] += 1;
                    // Entries whose *result* register was just clobbered
                    // can no longer be reused.
                    table.retain(|_, res| *res != d);
                }

                // Record the new expression AFTER purging (so the purge
                // cannot delete the entry we are adding).
                if !reused {
                    if let (Some(key), Some(dst)) = (key, inst.def()) {
                        table.insert(key, dst);
                    }
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_ir::builder::FunctionBuilder;
    use ic_ir::{ElemClass, Ty};

    #[test]
    fn reuses_pure_expression() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let x = b.bin(BinOp::Mul, p, p);
        let y = b.bin(BinOp::Mul, p, p);
        let s = b.bin(BinOp::Add, x, y);
        b.ret(Some(s.into()));
        m.add_func(b.finish());
        assert!(run(&mut m));
        assert!(matches!(
            m.funcs[0].blocks[0].insts[1],
            Inst::Mov {
                src: Operand::Reg(r),
                ..
            } if r == x
        ));
    }

    #[test]
    fn commutative_match() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let x = b.bin(BinOp::Add, p, 3i64);
        let _y = b.bin(BinOp::Add, 3i64, p);
        b.ret(Some(x.into()));
        m.add_func(b.finish());
        assert!(run(&mut m));
    }

    #[test]
    fn redefinition_blocks_reuse() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let x = b.bin(BinOp::Mul, p, p);
        b.bin_to(p, BinOp::Add, p, 1i64); // p changes
        let y = b.bin(BinOp::Mul, p, p); // NOT the same value
        let s = b.bin(BinOp::Add, x, y);
        b.ret(Some(s.into()));
        m.add_func(b.finish());
        assert!(!run(&mut m));
    }

    #[test]
    fn result_clobber_blocks_reuse() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let x = b.bin(BinOp::Mul, p, p);
        b.bin_to(x, BinOp::Add, x, 1i64); // x no longer holds p*p
        let y = b.bin(BinOp::Mul, p, p);
        let s = b.bin(BinOp::Add, x, y);
        b.ret(Some(s.into()));
        m.add_func(b.finish());
        assert!(!run(&mut m), "clobbered result must not be forwarded");
    }

    #[test]
    fn load_reuse_until_store() {
        let mut m = Module::new("t");
        let arr = m.add_array("a", ElemClass::Int, 8);
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        let v1 = b.load(Ty::I64, arr, 3i64);
        let _v2 = b.load(Ty::I64, arr, 3i64); // reusable
        b.store(arr, 3i64, 9i64);
        let v3 = b.load(Ty::I64, arr, 3i64); // NOT reusable
        let s = b.bin(BinOp::Add, v1, v3);
        b.ret(Some(s.into()));
        m.add_func(b.finish());
        assert!(run(&mut m));
        assert!(matches!(m.funcs[0].blocks[0].insts[1], Inst::Mov { .. }));
        assert!(matches!(m.funcs[0].blocks[0].insts[3], Inst::Load { .. }));
    }

    #[test]
    fn div_not_csed() {
        // Division traps; keep both (DCE-style removability rule).
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let x = b.bin(BinOp::Div, 100i64, p);
        let y = b.bin(BinOp::Div, 100i64, p);
        let s = b.bin(BinOp::Add, x, y);
        b.ret(Some(s.into()));
        m.add_func(b.finish());
        // CSE of a trapping op is actually safe (same operands, same trap),
        // but we keep the conservative contract stated in the docs.
        assert!(!run(&mut m));
    }
}
