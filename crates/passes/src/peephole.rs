//! Peephole algebraic simplifications on single instructions.

use ic_ir::{BinOp, Inst, Module, Operand};

/// Simplify one instruction, or `None` if no rule applies.
fn simplify(inst: &Inst) -> Option<Inst> {
    let Inst::Bin { op, dst, a, b } = inst else {
        return None;
    };
    let dst = *dst;
    let mv = |src: Operand| Some(Inst::Mov { dst, src });
    use BinOp::*;
    use Operand::{ImmF, ImmI, Reg};
    match (op, a, b) {
        // x + 0, 0 + x, x - 0, x | 0, x ^ 0, x << 0, x >> 0
        (Add | Or | Xor | Shl | Shr | Sub, x, ImmI(0)) => mv(*x),
        (Add | Or | Xor, ImmI(0), x) => mv(*x),
        // x * 1, 1 * x, x / 1
        (Mul | Div, x, ImmI(1)) => mv(*x),
        (Mul, ImmI(1), x) => mv(*x),
        // x * 0, 0 * x, 0 / x(nonzero-imm), x & 0
        (Mul | And, _, ImmI(0)) => mv(ImmI(0)),
        (Mul | And, ImmI(0), _) => mv(ImmI(0)),
        // x - x, x ^ x
        (Sub | Xor, Reg(x), Reg(y)) if x == y => mv(ImmI(0)),
        // x & x, x | x
        (And | Or, Reg(x), Reg(y)) if x == y => mv(Operand::Reg(*x)),
        // x % 1 == 0
        (Rem, _, ImmI(1)) => mv(ImmI(0)),
        // x == x, x <= x, x >= x (register identity only)
        (Eq | Le | Ge, Reg(x), Reg(y)) if x == y => mv(ImmI(1)),
        (Ne | Lt | Gt, Reg(x), Reg(y)) if x == y => mv(ImmI(0)),
        // float identities that are exact in IEEE: x * 1.0, x / 1.0
        (FMul | FDiv, x, ImmF(f)) if *f == 1.0 => mv(*x),
        (FMul, ImmF(f), x) if *f == 1.0 => mv(*x),
        _ => None,
    }
}

/// Run over every function; returns true if any rule fired.
pub fn run(module: &mut Module) -> bool {
    let mut changed = false;
    for f in &mut module.funcs {
        for block in &mut f.blocks {
            for inst in &mut block.insts {
                if let Some(new) = simplify(inst) {
                    *inst = new;
                    changed = true;
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_ir::builder::FunctionBuilder;
    use ic_ir::Ty;

    fn first_inst_after(build: impl FnOnce(&mut FunctionBuilder)) -> Inst {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::I64], Some(Ty::I64));
        build(&mut b);
        b.ret(Some(0i64.into()));
        m.add_func(b.finish());
        run(&mut m);
        m.funcs[0].blocks[0].insts[0].clone()
    }

    #[test]
    fn add_zero_becomes_mov() {
        let p = ic_ir::Reg(0);
        let inst = first_inst_after(|b| {
            b.bin(BinOp::Add, p, 0i64);
        });
        assert!(matches!(inst, Inst::Mov { src: Operand::Reg(r), .. } if r == p));
    }

    #[test]
    fn mul_zero_becomes_zero() {
        let p = ic_ir::Reg(0);
        let inst = first_inst_after(|b| {
            b.bin(BinOp::Mul, p, 0i64);
        });
        assert!(matches!(
            inst,
            Inst::Mov {
                src: Operand::ImmI(0),
                ..
            }
        ));
    }

    #[test]
    fn self_xor_zeroes() {
        let p = ic_ir::Reg(0);
        let inst = first_inst_after(|b| {
            b.bin(BinOp::Xor, p, p);
        });
        assert!(matches!(
            inst,
            Inst::Mov {
                src: Operand::ImmI(0),
                ..
            }
        ));
    }

    #[test]
    fn self_compare_resolves() {
        let p = ic_ir::Reg(0);
        let eq = first_inst_after(|b| {
            b.bin(BinOp::Eq, p, p);
        });
        assert!(matches!(
            eq,
            Inst::Mov {
                src: Operand::ImmI(1),
                ..
            }
        ));
        let lt = first_inst_after(|b| {
            b.bin(BinOp::Lt, p, p);
        });
        assert!(matches!(
            lt,
            Inst::Mov {
                src: Operand::ImmI(0),
                ..
            }
        ));
    }

    #[test]
    fn float_add_zero_not_simplified() {
        // x + 0.0 is NOT an identity under IEEE (x = -0.0), so no rule.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::F64], Some(Ty::I64));
        let p = b.params()[0];
        let _x = b.bin(BinOp::FAdd, p, 0.0f64);
        b.ret(Some(0i64.into()));
        m.add_func(b.finish());
        assert!(!run(&mut m));
    }

    #[test]
    fn fmul_one_simplified() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::F64], Some(Ty::I64));
        let p = b.params()[0];
        let _x = b.bin(BinOp::FMul, p, 1.0f64);
        b.ret(Some(0i64.into()));
        m.add_func(b.finish());
        assert!(run(&mut m));
    }
}
