//! Local list scheduling.
//!
//! Reorders instructions within each block to minimize dependence stalls
//! on the in-order simulated machines: a dependence DAG is built over
//! true (read-after-write), anti (write-after-read) and output
//! (write-after-write) register dependences plus memory/call ordering,
//! then instructions are emitted greedily by descending critical-path
//! height. On the 8-wide VLIW config this is the single most profitable
//! scalar pass for straight-line code — which is why the paper's sequence
//! space rewards placing it after unrolling.

use ic_ir::{BinOp, Inst, Module, Operand, Reg};
use std::collections::HashMap;

/// Latency estimate used for priorities (mirrors the machine models
/// coarsely; exact values only shift tie-breaks).
fn est_latency(inst: &Inst) -> u64 {
    match inst {
        Inst::Load { .. } => 4,
        Inst::Bin { op, .. } => match op {
            BinOp::Mul => 2,
            BinOp::Div | BinOp::Rem => 18,
            BinOp::FAdd | BinOp::FSub => 3,
            BinOp::FMul => 4,
            BinOp::FDiv => 20,
            _ => 1,
        },
        _ => 1,
    }
}

fn is_mem(inst: &Inst) -> bool {
    matches!(inst, Inst::Load { .. } | Inst::Store { .. })
}

fn is_barrier(inst: &Inst) -> bool {
    matches!(inst, Inst::Call { .. })
}

/// Schedule one block; returns the new order if it differs.
fn schedule_block(insts: &[Inst]) -> Option<Vec<Inst>> {
    let n = insts.len();
    if n < 3 {
        return None;
    }

    // Build dependence edges: succ lists + indegrees.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg: Vec<usize> = vec![0; n];
    let edge = |from: usize, to: usize, succs: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>| {
        if !succs[from].contains(&to) {
            succs[from].push(to);
            indeg[to] += 1;
        }
    };

    let mut last_def: HashMap<Reg, usize> = HashMap::new();
    let mut last_uses: HashMap<Reg, Vec<usize>> = HashMap::new();
    let mut last_store: Option<usize> = None;
    let mut mem_since_store: Vec<usize> = Vec::new();
    let mut last_barrier: Option<usize> = None;

    for (i, inst) in insts.iter().enumerate() {
        // True deps: my uses depend on the last def of each used reg.
        inst.for_each_use(|op| {
            if let Operand::Reg(r) = op {
                if let Some(&d) = last_def.get(r) {
                    edge(d, i, &mut succs, &mut indeg);
                }
            }
        });
        if let Some(d) = inst.def() {
            // Output dep on previous def; anti deps on previous uses.
            if let Some(&pd) = last_def.get(&d) {
                edge(pd, i, &mut succs, &mut indeg);
            }
            if let Some(uses) = last_uses.get(&d) {
                for &u in uses {
                    if u != i {
                        edge(u, i, &mut succs, &mut indeg);
                    }
                }
            }
        }
        // Memory ordering: stores order against all memory ops; loads only
        // against stores (conservative array-blind model).
        if is_mem(inst) {
            if let Some(s) = last_store {
                edge(s, i, &mut succs, &mut indeg);
            }
            if matches!(inst, Inst::Store { .. }) {
                for &mo in &mem_since_store {
                    edge(mo, i, &mut succs, &mut indeg);
                }
                mem_since_store.clear();
                last_store = Some(i);
            } else {
                mem_since_store.push(i);
            }
        }
        // Calls are full barriers.
        if let Some(bi) = last_barrier {
            edge(bi, i, &mut succs, &mut indeg);
        }
        if is_barrier(inst) {
            for j in 0..i {
                edge(j, i, &mut succs, &mut indeg);
            }
            last_barrier = Some(i);
        }

        // Bookkeeping.
        inst.for_each_use(|op| {
            if let Operand::Reg(r) = op {
                last_uses.entry(*r).or_default().push(i);
            }
        });
        if let Some(d) = inst.def() {
            last_def.insert(d, i);
            last_uses.remove(&d);
        }
    }

    // Critical-path heights (reverse topological — indices only go forward,
    // so a reverse index scan works).
    let mut height: Vec<u64> = vec![0; n];
    for i in (0..n).rev() {
        let lat = est_latency(&insts[i]);
        let succ_max = succs[i].iter().map(|&s| height[s]).max().unwrap_or(0);
        height[i] = lat + succ_max;
    }

    // Greedy list scheduling: pick the ready instruction with the largest
    // height (ties: original order, keeping the schedule stable).
    let mut order = Vec::with_capacity(n);
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    while let Some(pos) = ready
        .iter()
        .enumerate()
        .max_by_key(|(_, &i)| (height[i], std::cmp::Reverse(i)))
        .map(|(p, _)| p)
    {
        let i = ready.swap_remove(pos);
        order.push(i);
        for &s in &succs[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "scheduling must emit every instruction");

    if order.iter().copied().eq(0..n) {
        return None;
    }
    Some(order.into_iter().map(|i| insts[i].clone()).collect())
}

/// Run over every block of every function; returns true if any block was
/// reordered.
pub fn run(module: &mut Module) -> bool {
    let mut changed = false;
    for f in &mut module.funcs {
        for block in &mut f.blocks {
            if let Some(new) = schedule_block(&block.insts) {
                block.insts = new;
                changed = true;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_machine::{simulate_default, MachineConfig};

    fn exec_and_mem(m: &ic_ir::Module) -> (Option<i64>, u64) {
        let r = simulate_default(m, &MachineConfig::test_tiny(), 10_000_000).unwrap();
        (r.ret_i64(), r.mem.checksum())
    }

    #[test]
    fn preserves_semantics_on_real_program() {
        let src = "int a[16]; int main() {
            int s = 0;
            for (int i = 0; i < 16; i = i + 1) {
                a[i] = i * i;
            }
            for (int i = 0; i < 16; i = i + 1) {
                int x = a[i] * 3;
                int y = a[i] + 5;
                s = s + x * y;
            }
            return s;
        }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        run(&mut m1);
        ic_ir::verify::verify_module(&m1).unwrap();
        assert_eq!(exec_and_mem(&m0), exec_and_mem(&m1));
    }

    #[test]
    fn reduces_stalls_on_interleavable_code() {
        // Two independent long-latency chains interleaved badly by source
        // order: scheduling should reduce cycles on a wide machine.
        let src = "int main() {
            int a = 3; int b = 5;
            int x = a * a; x = x * x; x = x * x;
            int y = b * b; y = y * y; y = y * y;
            return x + y;
        }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        // Scheduling mostly matters after const-prop would be defeated;
        // here operands are constants so mul chains stay (no folding run).
        run(&mut m1);
        let cfg = MachineConfig::vliw_c6713_like();
        let r0 = simulate_default(&m0, &cfg, 100_000).unwrap();
        let r1 = simulate_default(&m1, &cfg, 100_000).unwrap();
        assert_eq!(r0.ret_i64(), r1.ret_i64());
        assert!(r1.cycles() <= r0.cycles());
    }

    #[test]
    fn store_load_order_respected() {
        let src = "int a[4]; int main() {
            a[0] = 1;
            int x = a[0];
            a[0] = 2;
            int y = a[0];
            return x * 10 + y;
        }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        run(&mut m1);
        assert_eq!(exec_and_mem(&m0).0, Some(12));
        assert_eq!(exec_and_mem(&m1).0, Some(12));
    }

    #[test]
    fn anti_dependences_respected() {
        // y reads s, then s is overwritten: the write must not move up.
        let src = "int main() {
            int s = 7;
            int y = s + 1;
            s = 100;
            return y + s;
        }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        run(&mut m1);
        assert_eq!(exec_and_mem(&m0).0, exec_and_mem(&m1).0);
        assert_eq!(exec_and_mem(&m1).0, Some(108));
    }

    #[test]
    fn call_barrier_respected() {
        let src = "int g[1];
            int bump() { g[0] = g[0] + 1; return g[0]; }
            int main() {
                int a = bump();
                int b = bump();
                return a * 10 + b;
            }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        run(&mut m1);
        assert_eq!(exec_and_mem(&m1).0, Some(12));
    }

    #[test]
    fn tiny_blocks_untouched() {
        let src = "int main() { return 1 + 2; }";
        let mut m = ic_lang::compile("t", src).unwrap();
        assert!(!run(&mut m));
    }
}
