//! Constant folding: evaluate instructions whose operands are all
//! immediates, replacing them with `Mov dst, <imm>`. Also folds constant
//! branch conditions into unconditional jumps (leaving the dead edge for
//! `simplify-cfg` to reap).

use ic_ir::{BinOp, Inst, Module, Operand, Terminator, UnOp};

/// Fold a binary op over immediates. `None` when not both-imm or when the
/// operation would trap (division by zero stays for runtime).
fn fold_bin(op: BinOp, a: Operand, b: Operand) -> Option<Operand> {
    use BinOp::*;
    match (a, b) {
        (Operand::ImmI(x), Operand::ImmI(y)) => {
            let bi = |v: bool| Operand::ImmI(v as i64);
            Some(match op {
                Add => Operand::ImmI(x.wrapping_add(y)),
                Sub => Operand::ImmI(x.wrapping_sub(y)),
                Mul => Operand::ImmI(x.wrapping_mul(y)),
                Div => {
                    if y == 0 {
                        return None;
                    }
                    Operand::ImmI(x.wrapping_div(y))
                }
                Rem => {
                    if y == 0 {
                        return None;
                    }
                    Operand::ImmI(x.wrapping_rem(y))
                }
                And => Operand::ImmI(x & y),
                Or => Operand::ImmI(x | y),
                Xor => Operand::ImmI(x ^ y),
                Shl => Operand::ImmI(x.wrapping_shl(y as u32 & 63)),
                Shr => Operand::ImmI(x.wrapping_shr(y as u32 & 63)),
                Eq => bi(x == y),
                Ne => bi(x != y),
                Lt => bi(x < y),
                Le => bi(x <= y),
                Gt => bi(x > y),
                Ge => bi(x >= y),
                _ => return None,
            })
        }
        (Operand::ImmF(x), Operand::ImmF(y)) => {
            let bi = |v: bool| Operand::ImmI(v as i64);
            Some(match op {
                FAdd => Operand::ImmF(x + y),
                FSub => Operand::ImmF(x - y),
                FMul => Operand::ImmF(x * y),
                FDiv => Operand::ImmF(x / y),
                FEq => bi(x == y),
                FNe => bi(x != y),
                FLt => bi(x < y),
                FLe => bi(x <= y),
                FGt => bi(x > y),
                FGe => bi(x >= y),
                _ => return None,
            })
        }
        _ => None,
    }
}

fn fold_un(op: UnOp, a: Operand) -> Option<Operand> {
    match (op, a) {
        (UnOp::Neg, Operand::ImmI(x)) => Some(Operand::ImmI(x.wrapping_neg())),
        (UnOp::Not, Operand::ImmI(x)) => Some(Operand::ImmI((x == 0) as i64)),
        (UnOp::FNeg, Operand::ImmF(x)) => Some(Operand::ImmF(-x)),
        (UnOp::I2F, Operand::ImmI(x)) => Some(Operand::ImmF(x as f64)),
        (UnOp::F2I, Operand::ImmF(x)) => Some(Operand::ImmI(x as i64)),
        _ => None,
    }
}

/// Run over every function; returns true if anything folded.
pub fn run(module: &mut Module) -> bool {
    let mut changed = false;
    for f in &mut module.funcs {
        for block in &mut f.blocks {
            for inst in &mut block.insts {
                let folded = match inst {
                    Inst::Bin { op, dst, a, b } => {
                        fold_bin(*op, *a, *b).map(|v| Inst::Mov { dst: *dst, src: v })
                    }
                    Inst::Un { op, dst, a } => {
                        fold_un(*op, *a).map(|v| Inst::Mov { dst: *dst, src: v })
                    }
                    Inst::Select {
                        dst,
                        cond: Operand::ImmI(c),
                        t,
                        f,
                    } => Some(Inst::Mov {
                        dst: *dst,
                        src: if *c != 0 { *t } else { *f },
                    }),
                    _ => None,
                };
                if let Some(new) = folded {
                    *inst = new;
                    changed = true;
                }
            }
            // Constant branch -> jump.
            if let Terminator::Branch {
                cond: Operand::ImmI(c),
                then_bb,
                else_bb,
            } = block.term
            {
                block.term = Terminator::Jump(if c != 0 { then_bb } else { else_bb });
                changed = true;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_ir::builder::FunctionBuilder;
    use ic_ir::{BlockId, Ty};

    #[test]
    fn folds_int_arith() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        let x = b.bin(BinOp::Mul, 6i64, 7i64);
        b.ret(Some(x.into()));
        m.add_func(b.finish());
        assert!(run(&mut m));
        assert!(matches!(
            m.funcs[0].blocks[0].insts[0],
            Inst::Mov {
                src: Operand::ImmI(42),
                ..
            }
        ));
    }

    #[test]
    fn folds_float_and_compare() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        let _f = b.bin(BinOp::FMul, 2.0f64, 4.0f64);
        let c = b.bin(BinOp::FLt, 1.0f64, 2.0f64);
        b.ret(Some(c.into()));
        m.add_func(b.finish());
        assert!(run(&mut m));
        assert!(matches!(
            m.funcs[0].blocks[0].insts[0],
            Inst::Mov {
                src: Operand::ImmF(v),
                ..
            } if v == 8.0
        ));
        assert!(matches!(
            m.funcs[0].blocks[0].insts[1],
            Inst::Mov {
                src: Operand::ImmI(1),
                ..
            }
        ));
    }

    #[test]
    fn preserves_div_by_zero_for_runtime() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        let x = b.bin(BinOp::Div, 1i64, 0i64);
        b.ret(Some(x.into()));
        m.add_func(b.finish());
        assert!(!run(&mut m), "div by zero must not be folded away");
        assert!(matches!(m.funcs[0].blocks[0].insts[0], Inst::Bin { .. }));
    }

    #[test]
    fn folds_constant_branch() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        let t = b.new_block();
        let e = b.new_block();
        b.branch(1i64, t, e);
        b.switch_to(t);
        b.ret(Some(1i64.into()));
        b.switch_to(e);
        b.ret(Some(0i64.into()));
        m.add_func(b.finish());
        assert!(run(&mut m));
        assert!(matches!(
            m.funcs[0].blocks[0].term,
            Terminator::Jump(BlockId(1))
        ));
    }

    #[test]
    fn folds_unary_and_select() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        let n = b.un(UnOp::Neg, 5i64);
        b.ret(Some(n.into()));
        let mut f = b.finish();
        f.blocks[0].insts.push(Inst::Select {
            dst: ic_ir::Reg(0),
            cond: Operand::ImmI(0),
            t: Operand::ImmI(1),
            f: Operand::ImmI(2),
        });
        m.add_func(f);
        assert!(run(&mut m));
        assert!(matches!(
            m.funcs[0].blocks[0].insts[0],
            Inst::Mov {
                src: Operand::ImmI(-5),
                ..
            }
        ));
        assert!(matches!(
            m.funcs[0].blocks[0].insts[1],
            Inst::Mov {
                src: Operand::ImmI(2),
                ..
            }
        ));
    }
}
