//! Block-local copy propagation: after `Mov x, y`, later uses of `x` read
//! `y` directly until either register is redefined.

use ic_ir::{Inst, Module, Operand, Reg};
use std::collections::HashMap;

/// Run over every function; returns true if any use was rewritten.
pub fn run(module: &mut Module) -> bool {
    let mut changed = false;
    for f in &mut module.funcs {
        for block in &mut f.blocks {
            // copy_of[x] = y  means x currently equals register y.
            let mut copy_of: HashMap<Reg, Reg> = HashMap::new();
            let invalidate = |copy_of: &mut HashMap<Reg, Reg>, d: Reg| {
                copy_of.remove(&d);
                copy_of.retain(|_, src| *src != d);
            };
            for inst in &mut block.insts {
                inst.for_each_use_mut(|op| {
                    if let Operand::Reg(r) = op {
                        if let Some(&src) = copy_of.get(r) {
                            *op = Operand::Reg(src);
                            changed = true;
                        }
                    }
                });
                match inst {
                    Inst::Mov {
                        dst,
                        src: Operand::Reg(s),
                    } if dst != s => {
                        let (d, s) = (*dst, *s);
                        invalidate(&mut copy_of, d);
                        copy_of.insert(d, s);
                    }
                    _ => {
                        if let Some(d) = inst.def() {
                            invalidate(&mut copy_of, d);
                        }
                    }
                }
            }
            block.term.for_each_use_mut(|op| {
                if let Operand::Reg(r) = op {
                    if let Some(&src) = copy_of.get(r) {
                        *op = Operand::Reg(src);
                        changed = true;
                    }
                }
            });
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_ir::builder::FunctionBuilder;
    use ic_ir::{BinOp, Ty};

    #[test]
    fn forwards_through_copy() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let x = b.new_reg(Ty::I64);
        b.mov(x, p);
        let y = b.bin(BinOp::Add, x, 1i64);
        b.ret(Some(y.into()));
        m.add_func(b.finish());
        assert!(run(&mut m));
        match &m.funcs[0].blocks[0].insts[1] {
            Inst::Bin { a, .. } => assert_eq!(*a, Operand::Reg(p)),
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn source_redefinition_invalidates() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let x = b.new_reg(Ty::I64);
        b.mov(x, p);
        b.bin_to(p, BinOp::Add, p, 1i64); // p changes: x != p now
        let y = b.bin(BinOp::Add, x, 1i64);
        b.ret(Some(y.into()));
        m.add_func(b.finish());
        run(&mut m);
        match &m.funcs[0].blocks[0].insts[2] {
            Inst::Bin { a, .. } => assert_eq!(*a, Operand::Reg(x), "must not forward stale copy"),
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn dest_redefinition_invalidates() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let x = b.new_reg(Ty::I64);
        b.mov(x, p);
        b.bin_to(x, BinOp::Mul, x, 2i64); // x no longer a copy
        let y = b.bin(BinOp::Add, x, 1i64);
        b.ret(Some(y.into()));
        m.add_func(b.finish());
        run(&mut m);
        match &m.funcs[0].blocks[0].insts[2] {
            Inst::Bin { a, .. } => assert_eq!(*a, Operand::Reg(x)),
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn chains_collapse() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let x = b.new_reg(Ty::I64);
        let y = b.new_reg(Ty::I64);
        b.mov(x, p);
        b.mov(y, x);
        b.ret(Some(y.into()));
        m.add_func(b.finish());
        run(&mut m);
        assert!(matches!(
            m.funcs[0].blocks[0].term,
            ic_ir::Terminator::Ret(Some(Operand::Reg(r))) if r == p
        ));
    }
}
