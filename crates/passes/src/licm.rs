//! Loop-invariant code motion.
//!
//! For every natural loop that has a unique preheader-capable entry edge,
//! hoists instructions that are:
//!
//! * speculable (pure, non-trapping) — loads qualify only when the loop
//!   contains no store or call at all;
//! * operand-invariant: every register operand has *no definition inside
//!   the loop*;
//! * the only definition of their destination register in the loop, with
//!   the destination not live into the loop header (so the preheader
//!   definition cannot clobber a value observed before the first
//!   execution of the original instruction).
//!
//! These conditions are the classically sufficient ones for non-SSA IR.
//! The preheader is created on demand by splitting the entry edge.

use ic_ir::cfg::Cfg;
use ic_ir::dom::Dominators;
use ic_ir::liveness::Liveness;
use ic_ir::loops::LoopForest;
use ic_ir::{BlockId, Function, Inst, Module, Operand, Reg, Terminator};
use std::collections::{HashMap, HashSet};

/// Run over every function; returns true if anything was hoisted.
pub fn run(module: &mut Module) -> bool {
    let mut changed = false;
    for f in &mut module.funcs {
        // Hoist one loop at a time; recompute analyses after each change
        // (loops are few, functions small — clarity over asymptotics).
        let mut guard = 0;
        while hoist_one(f) {
            changed = true;
            guard += 1;
            if guard > 100 {
                break;
            }
        }
    }
    changed
}

fn hoist_one(f: &mut Function) -> bool {
    let cfg = Cfg::compute(f);
    let dom = Dominators::compute(f, &cfg);
    let forest = LoopForest::compute(f, &cfg, &dom);
    let lv = Liveness::compute(f, &cfg);

    for lp in &forest.loops {
        let body: HashSet<BlockId> = lp.body.iter().copied().collect();

        // Definitions inside the loop, per register.
        let mut defs_in_loop: HashMap<Reg, usize> = HashMap::new();
        let mut has_side_effects = false;
        for &b in &lp.body {
            for inst in &f.block(b).insts {
                if let Some(d) = inst.def() {
                    *defs_in_loop.entry(d).or_insert(0) += 1;
                }
                if matches!(inst, Inst::Store { .. } | Inst::Call { .. }) {
                    has_side_effects = true;
                }
            }
        }

        // Find a hoistable instruction.
        let mut candidate: Option<(BlockId, usize)> = None;
        'search: for &b in &lp.body {
            for (i, inst) in f.block(b).insts.iter().enumerate() {
                let hoistable = match inst {
                    Inst::Bin { op, .. } => op.is_speculable(),
                    Inst::Un { .. } | Inst::Mov { .. } | Inst::Select { .. } => true,
                    Inst::Load { .. } => !has_side_effects,
                    _ => false,
                };
                if !hoistable {
                    continue;
                }
                let Some(dst) = inst.def() else { continue };
                if defs_in_loop.get(&dst) != Some(&1) {
                    continue;
                }
                // Destination must not be observable before the def: not
                // live into the header.
                if lv.live_in[lp.header.index()].contains(dst) {
                    continue;
                }
                // All register operands invariant.
                let mut invariant = true;
                inst.for_each_use(|op| {
                    if let Operand::Reg(r) = op {
                        if defs_in_loop.contains_key(r) {
                            invariant = false;
                        }
                    }
                });
                if !invariant {
                    continue;
                }
                candidate = Some((b, i));
                break 'search;
            }
        }

        let Some((cb, ci)) = candidate else { continue };

        // Build / find the preheader: the unique edge source outside the
        // loop into the header. If several, give up on this loop.
        let outside_preds: Vec<BlockId> = cfg
            .preds(lp.header)
            .iter()
            .copied()
            .filter(|p| !body.contains(p) && cfg.is_reachable(*p))
            .collect();
        if outside_preds.is_empty() {
            continue;
        }

        let inst = f.block_mut(cb).insts.remove(ci);

        if outside_preds.len() == 1 && matches!(f.block(outside_preds[0]).term, Terminator::Jump(_))
        {
            // The edge source ends in an unconditional jump to the header:
            // append there.
            f.block_mut(outside_preds[0]).insts.push(inst);
        } else {
            // Split: create a fresh preheader between the outside preds
            // and the header.
            let pre = f.add_block();
            f.block_mut(pre).insts.push(inst);
            f.block_mut(pre).term = Terminator::Jump(lp.header);
            for p in outside_preds {
                f.block_mut(p).term.for_each_succ_mut(|s| {
                    if *s == lp.header {
                        *s = pre;
                    }
                });
            }
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_machine::{simulate_default, MachineConfig};

    fn exec(m: &ic_ir::Module) -> i64 {
        simulate_default(m, &MachineConfig::test_tiny(), 10_000_000)
            .unwrap()
            .ret_i64()
            .unwrap()
    }

    #[test]
    fn hoists_invariant_multiply() {
        let src = "int main() {
            int n = 37;
            int s = 0;
            for (int i = 0; i < 100; i = i + 1) {
                int t = n * 3;
                s = s + t + i;
            }
            return s;
        }";
        let mut m = ic_lang::compile("t", src).unwrap();
        let before = exec(&m);
        let insts_before = m.num_insts();
        assert!(run(&mut m));
        ic_ir::verify::verify_module(&m).unwrap();
        assert_eq!(exec(&m), before, "semantics preserved");
        assert_eq!(m.num_insts(), insts_before, "moved, not duplicated");

        // And it actually got faster (fewer dynamic instructions).
        let cfg = MachineConfig::test_tiny();
        let m0 = ic_lang::compile("t", src).unwrap();
        let r0 = simulate_default(&m0, &cfg, 10_000_000).unwrap();
        let r1 = simulate_default(&m, &cfg, 10_000_000).unwrap();
        assert!(r1.instructions() < r0.instructions());
    }

    #[test]
    fn does_not_hoist_variant_value() {
        let src = "int main() {
            int s = 0;
            for (int i = 0; i < 10; i = i + 1) {
                int t = i * 3;
                s = s + t;
            }
            return s;
        }";
        let mut m = ic_lang::compile("t", src).unwrap();
        let before = exec(&m);
        run(&mut m); // may hoist nothing or harmless invariants
        assert_eq!(exec(&m), before);
    }

    #[test]
    fn does_not_hoist_load_past_store() {
        let src = "int a[8]; int main() {
            int s = 0;
            for (int i = 0; i < 10; i = i + 1) {
                int t = a[0];
                a[0] = t + 1;
                s = s + t;
            }
            return s;
        }";
        let mut m = ic_lang::compile("t", src).unwrap();
        let before = exec(&m);
        run(&mut m);
        assert_eq!(exec(&m), before, "load of mutated cell must stay put");
        assert_eq!(before, 45);
    }

    #[test]
    fn hoists_load_from_readonly_loop() {
        let src = "int a[8]; int main() {
            a[0] = 5;
            int s = 0;
            for (int i = 0; i < 10; i = i + 1) {
                s = s + a[0];
            }
            return s;
        }";
        let mut m = ic_lang::compile("t", src).unwrap();
        assert_eq!(exec(&m), 50);
        let changed = run(&mut m);
        ic_ir::verify::verify_module(&m).unwrap();
        assert!(changed, "read-only loop load should hoist");
        assert_eq!(exec(&m), 50);
    }

    #[test]
    fn nested_loop_invariants() {
        let src = "int main() {
            int s = 0;
            int k = 7;
            for (int i = 0; i < 5; i = i + 1) {
                for (int j = 0; j < 5; j = j + 1) {
                    s = s + k * 11;
                }
            }
            return s;
        }";
        let mut m = ic_lang::compile("t", src).unwrap();
        let before = exec(&m);
        assert!(run(&mut m));
        assert_eq!(exec(&m), before);
        assert_eq!(before, 25 * 77);
    }

    #[test]
    fn while_loop_with_branch_preheader() {
        // The loop entry edge comes from a conditional branch: the pass
        // must split the edge rather than append to the branch block.
        let src = "int main() {
            int s = 0;
            int n = 6;
            if (n > 0) {
                int i = 0;
                while (i < n) {
                    s = s + n * 2;
                    i = i + 1;
                }
            }
            return s;
        }";
        let mut m = ic_lang::compile("t", src).unwrap();
        let before = exec(&m);
        run(&mut m);
        ic_ir::verify::verify_module(&m).unwrap();
        assert_eq!(exec(&m), before);
    }
}
