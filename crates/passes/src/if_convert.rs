//! If-conversion: turn short, side-effect-free branch diamonds into
//! straight-line code with `Select` instructions.
//!
//! Pattern:
//!
//! ```text
//! A:  ... ; br c, T, E
//! T:  <= MAX_ARM speculable insts ; jump J      (single pred: A)
//! E:  <= MAX_ARM speculable insts ; jump J      (single pred: A)
//! ```
//!
//! Both arms are appended to `A` with their definitions renamed to fresh
//! registers, then every register either arm originally defined gets a
//! `Select` on `c`. Profitable when the branch mispredicts (the paper's
//! VLIW target, like the real C6xx, relies heavily on predication);
//! counter-productive for well-predicted branches — exactly the kind of
//! decision the learned controller is for.

use ic_ir::cfg::Cfg;
use ic_ir::{BlockId, Function, Inst, Module, Operand, Reg, Terminator};
use std::collections::HashMap;

/// Maximum instructions per arm.
pub const MAX_ARM: usize = 4;

fn arm_convertible(f: &Function, b: BlockId) -> bool {
    let block = f.block(b);
    if block.insts.len() > MAX_ARM {
        return false;
    }
    block.insts.iter().all(|i| match i {
        Inst::Bin { op, .. } => op.is_speculable(),
        Inst::Un { .. } | Inst::Mov { .. } | Inst::Load { .. } | Inst::Select { .. } => true,
        Inst::Store { .. } | Inst::Call { .. } => false,
    }) && block.insts.iter().all(|i| i.def().is_some())
}

/// Copy an arm's instructions with defs renamed to fresh registers.
/// Returns the instructions and the mapping original-def -> final fresh reg.
fn rename_arm(f: &mut Function, b: BlockId) -> (Vec<Inst>, HashMap<Reg, Reg>) {
    let insts = f.block(b).insts.clone();
    let mut map: HashMap<Reg, Reg> = HashMap::new();
    let mut out = Vec::with_capacity(insts.len());
    for mut inst in insts {
        // Uses see earlier renamed defs of the same arm.
        inst.for_each_use_mut(|op| {
            if let Operand::Reg(r) = op {
                if let Some(&nr) = map.get(r) {
                    *op = Operand::Reg(nr);
                }
            }
        });
        let d = inst.def().expect("checked: all defining");
        let ty = f.reg_ty(d);
        let fresh = f.new_reg(ty);
        inst.set_def(fresh);
        map.insert(d, fresh);
        out.push(inst);
    }
    (out, map)
}

fn convert_one(f: &mut Function) -> bool {
    let cfg = Cfg::compute(f);
    let nb = f.blocks.len();
    for ai in 0..nb {
        let a = BlockId(ai as u32);
        if !cfg.is_reachable(a) {
            continue;
        }
        let (cond, t, e) = match f.block(a).term {
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => (cond, then_bb, else_bb),
            _ => continue,
        };
        if t == e || t == a || e == a {
            continue;
        }
        // Both arms: single predecessor (a), convertible body, same join.
        let single_pred = |b: BlockId| {
            cfg.preds(b)
                .iter()
                .filter(|p| cfg.is_reachable(**p))
                .collect::<Vec<_>>()
                == vec![&a]
        };
        if !single_pred(t) || !single_pred(e) {
            continue;
        }
        if !arm_convertible(f, t) || !arm_convertible(f, e) {
            continue;
        }
        let (Terminator::Jump(jt), Terminator::Jump(je)) = (&f.block(t).term, &f.block(e).term)
        else {
            continue;
        };
        if jt != je {
            continue;
        }
        let join = *jt;
        if join == t || join == e {
            continue;
        }
        // The selects read the branch condition; if an arm redefines the
        // condition register, a select writing it would clobber the value
        // other selects still need. Skip that (rare) shape.
        if let Operand::Reg(c) = cond {
            let defines_cond = |b: BlockId| f.block(b).insts.iter().any(|i| i.def() == Some(c));
            if defines_cond(t) || defines_cond(e) {
                continue;
            }
        }

        // Transform.
        let (t_insts, t_map) = rename_arm(f, t);
        let (e_insts, e_map) = rename_arm(f, e);
        let mut defined: Vec<Reg> = t_map.keys().chain(e_map.keys()).copied().collect();
        defined.sort();
        defined.dedup();

        let a_block = f.blocks[a.index()].insts.len();
        let _ = a_block;
        let ab = &mut f.blocks[ai];
        ab.insts.extend(t_insts);
        ab.insts.extend(e_insts);
        for r in defined {
            let tv = t_map
                .get(&r)
                .map(|&nr| Operand::Reg(nr))
                .unwrap_or(Operand::Reg(r));
            let ev = e_map
                .get(&r)
                .map(|&nr| Operand::Reg(nr))
                .unwrap_or(Operand::Reg(r));
            ab.insts.push(Inst::Select {
                dst: r,
                cond,
                t: tv,
                f: ev,
            });
        }
        ab.term = Terminator::Jump(join);
        return true;
    }
    false
}

/// Run to a per-function fixpoint; returns true if any diamond converted.
pub fn run(module: &mut Module) -> bool {
    let mut changed = false;
    for f in &mut module.funcs {
        let mut guard = 0;
        while convert_one(f) {
            changed = true;
            guard += 1;
            if guard > 100 {
                break;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_machine::{simulate_default, Counter, MachineConfig};

    fn exec(m: &Module) -> (Option<i64>, u64, u64) {
        let r = simulate_default(m, &MachineConfig::superscalar_amd_like(), 50_000_000).unwrap();
        (
            r.ret_i64(),
            r.mem.checksum(),
            r.counters.get(Counter::BR_INS),
        )
    }

    #[test]
    fn converts_simple_diamond() {
        let src = "int main() {
            int s = 0;
            for (int i = 0; i < 100; i = i + 1) {
                int v = 0;
                if (i % 3 == 0) v = i * 2; else v = i + 7;
                s = s + v;
            }
            return s;
        }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        assert!(run(&mut m1));
        ic_ir::verify::verify_module(&m1).unwrap();
        let (r0, mem0, br0) = exec(&m0);
        let (r1, mem1, br1) = exec(&m1);
        assert_eq!(r0, r1);
        assert_eq!(mem0, mem1);
        assert!(
            br1 < br0,
            "a conditional branch disappeared: {br1} vs {br0}"
        );
        // At least one Select was emitted.
        let selects = m1
            .funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Select { .. }))
            .count();
        assert!(selects >= 1);
    }

    #[test]
    fn skips_arms_with_stores() {
        let src = "int a[4]; int main() {
            int x = 3;
            if (x > 1) a[0] = 1; else a[1] = 2;
            return a[0] + a[1];
        }";
        let mut m = ic_lang::compile("t", src).unwrap();
        assert!(!run(&mut m), "store arms must not be speculated");
    }

    #[test]
    fn skips_arms_with_calls_and_div() {
        let src = "int f(int x) { return x + 1; }
        int main() {
            int x = 3;
            int v = 0;
            if (x > 1) v = f(x); else v = 2;
            if (x > 2) v = v + 100 / x; else v = v - 1;
            return v;
        }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        run(&mut m1); // the div arm and call arm must be skipped
        ic_ir::verify::verify_module(&m1).unwrap();
        assert_eq!(exec(&m0).0, exec(&m1).0);
    }

    #[test]
    fn helps_on_unpredictable_branches() {
        // Data-dependent 50/50 branch: if-conversion removes mispredicts.
        let src = "int main() {
            int x = 88172645;
            int s = 0;
            for (int i = 0; i < 2000; i = i + 1) {
                x = (x * 1103515245 + 12345) % 2147483648;
                int v = 0;
                if (x & 1) v = x & 63; else v = i & 31;
                s = (s + v) % 1000003;
            }
            return s;
        }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        assert!(run(&mut m1));
        let cfg = MachineConfig::superscalar_amd_like();
        let r0 = simulate_default(&m0, &cfg, 50_000_000).unwrap();
        let r1 = simulate_default(&m1, &cfg, 50_000_000).unwrap();
        assert_eq!(r0.ret_i64(), r1.ret_i64());
        assert!(
            r1.counters.get(Counter::BR_MSP) < r0.counters.get(Counter::BR_MSP) / 2,
            "mispredicts should collapse: {} vs {}",
            r1.counters.get(Counter::BR_MSP),
            r0.counters.get(Counter::BR_MSP)
        );
        assert!(
            r1.cycles() < r0.cycles(),
            "if-conversion should win here: {} vs {}",
            r1.cycles(),
            r0.cycles()
        );
    }

    #[test]
    fn loads_may_be_speculated() {
        // Loads are non-trapping in this IR, so arms with loads convert.
        let src = "int a[16]; int b[16]; int main() {
            for (int i = 0; i < 16; i = i + 1) { a[i] = i; b[i] = 100 - i; }
            int s = 0;
            for (int i = 0; i < 16; i = i + 1) {
                int v = 0;
                if (i % 2 == 0) v = a[i]; else v = b[i];
                s = s + v;
            }
            return s;
        }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        assert!(run(&mut m1));
        ic_ir::verify::verify_module(&m1).unwrap();
        assert_eq!(exec(&m0).0, exec(&m1).0);
    }

    #[test]
    fn nested_diamonds_converge() {
        let src = "int main() {
            int s = 0;
            for (int i = 0; i < 50; i = i + 1) {
                int v = 0;
                if (i % 2 == 0) v = 1; else v = 2;
                int w = 0;
                if (i % 3 == 0) w = v * 2; else w = v + 9;
                s = s + w;
            }
            return s;
        }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        assert!(run(&mut m1));
        assert_eq!(exec(&m0).0, exec(&m1).0);
    }
}
