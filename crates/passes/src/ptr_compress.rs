//! Pointer compression: narrow `Ptr`-class arrays from 8-byte to 4-byte
//! elements when the module's data footprint fits a 32-bit address space.
//!
//! This is the optimization the paper's PCModel discovered for `181.mcf`
//! ("convert pointers from 64-bit to 32-bit, because 64-bit pointers are
//! reducing the effective cache capacity and memory bandwidth"). In this
//! stack the mechanism is identical: the cache model sees half the
//! footprint and half the bandwidth for pointer-heavy structures, while
//! values are untouched (see DESIGN.md §7).

use ic_ir::{ElemClass, Module};

/// Run over the module's arrays; returns true if any array was narrowed.
pub fn run(module: &mut Module) -> bool {
    if !module.small_addr_space {
        return false;
    }
    let mut changed = false;
    for a in &mut module.arrays {
        if a.class == ElemClass::Ptr && a.elem_size == 8 {
            a.elem_size = 4;
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrows_ptr_arrays_only() {
        let mut m = Module::new("t");
        m.add_array("ints", ElemClass::Int, 10);
        m.add_array("next", ElemClass::Ptr, 10);
        m.add_array("vals", ElemClass::Float, 10);
        assert!(run(&mut m));
        assert_eq!(m.arrays[0].elem_size, 8);
        assert_eq!(m.arrays[1].elem_size, 4);
        assert_eq!(m.arrays[2].elem_size, 8);
    }

    #[test]
    fn idempotent() {
        let mut m = Module::new("t");
        m.add_array("next", ElemClass::Ptr, 10);
        assert!(run(&mut m));
        assert!(!run(&mut m), "second run changes nothing");
    }

    #[test]
    fn refuses_large_address_space() {
        let mut m = Module::new("t");
        m.add_array("next", ElemClass::Ptr, 10);
        m.small_addr_space = false;
        assert!(!run(&mut m));
        assert_eq!(m.arrays[0].elem_size, 8);
    }

    #[test]
    fn semantics_unchanged_under_compression() {
        use ic_machine::{simulate_default, MachineConfig};
        let src = "ptr next[64]; int vals[64];
            int main() {
                for (int i = 0; i < 64; i = i + 1) {
                    next[i] = (i * 7 + 3) % 64;
                    vals[i] = i;
                }
                int s = 0;
                int p = 0;
                for (int k = 0; k < 100; k = k + 1) {
                    s = s + vals[p];
                    p = next[p];
                }
                return s;
            }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        assert!(run(&mut m1));
        let cfg = MachineConfig::test_tiny();
        let r0 = simulate_default(&m0, &cfg, 10_000_000).unwrap();
        let r1 = simulate_default(&m1, &cfg, 10_000_000).unwrap();
        assert_eq!(r0.ret_i64(), r1.ret_i64());
        // And the compressed version touches fewer cache lines.
        use ic_machine::Counter;
        assert!(
            r1.counters.get(Counter::L1_TCM) <= r0.counters.get(Counter::L1_TCM),
            "compression must not increase misses"
        );
    }
}
