//! Strength reduction: replace expensive operations with cheaper
//! equivalents (multiply by a power of two → shift, etc.).
//!
//! Signed division/remainder by powers of two are *not* reduced to shifts
//! because the rounding direction differs for negative operands; only the
//! always-safe rewrites are performed.

use ic_ir::{BinOp, Inst, Module, Operand};

fn log2_exact(v: i64) -> Option<i64> {
    if v > 0 && (v as u64).is_power_of_two() {
        Some(v.trailing_zeros() as i64)
    } else {
        None
    }
}

fn reduce(inst: &Inst) -> Option<Inst> {
    let Inst::Bin { op, dst, a, b } = inst else {
        return None;
    };
    let dst = *dst;
    use BinOp::*;
    match (op, a, b) {
        // x * 2^k  ->  x << k
        (Mul, x, Operand::ImmI(c)) => log2_exact(*c).map(|k| Inst::Bin {
            op: Shl,
            dst,
            a: *x,
            b: Operand::ImmI(k),
        }),
        (Mul, Operand::ImmI(c), x) => log2_exact(*c).map(|k| Inst::Bin {
            op: Shl,
            dst,
            a: *x,
            b: Operand::ImmI(k),
        }),
        // x + x  ->  x << 1
        (Add, Operand::Reg(x), Operand::Reg(y)) if x == y => Some(Inst::Bin {
            op: Shl,
            dst,
            a: Operand::Reg(*x),
            b: Operand::ImmI(1),
        }),
        // x * 2.0 -> x + x (one FP add is cheaper than a multiply on both
        // machine models; exact in IEEE)
        (FMul, x, Operand::ImmF(c)) if *c == 2.0 => Some(Inst::Bin {
            op: FAdd,
            dst,
            a: *x,
            b: *x,
        }),
        _ => None,
    }
}

/// Run over every function; returns true if any reduction fired.
pub fn run(module: &mut Module) -> bool {
    let mut changed = false;
    for f in &mut module.funcs {
        for block in &mut f.blocks {
            for inst in &mut block.insts {
                if let Some(new) = reduce(inst) {
                    *inst = new;
                    changed = true;
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_ir::builder::FunctionBuilder;
    use ic_ir::Ty;

    #[test]
    fn mul_pow2_to_shift() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let x = b.bin(BinOp::Mul, p, 8i64);
        b.ret(Some(x.into()));
        m.add_func(b.finish());
        assert!(run(&mut m));
        assert!(matches!(
            m.funcs[0].blocks[0].insts[0],
            Inst::Bin {
                op: BinOp::Shl,
                b: Operand::ImmI(3),
                ..
            }
        ));
    }

    #[test]
    fn mul_nonpow2_untouched() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let x = b.bin(BinOp::Mul, p, 6i64);
        b.ret(Some(x.into()));
        m.add_func(b.finish());
        assert!(!run(&mut m));
    }

    #[test]
    fn signed_div_untouched() {
        // (-7)/2 == -3 but (-7)>>1 == -4: must not reduce.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let x = b.bin(BinOp::Div, p, 2i64);
        b.ret(Some(x.into()));
        m.add_func(b.finish());
        assert!(!run(&mut m));
    }

    #[test]
    fn self_add_to_shift() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let x = b.bin(BinOp::Add, p, p);
        b.ret(Some(x.into()));
        m.add_func(b.finish());
        assert!(run(&mut m));
        assert!(matches!(
            m.funcs[0].blocks[0].insts[0],
            Inst::Bin { op: BinOp::Shl, .. }
        ));
    }

    #[test]
    fn semantics_preserved_on_negatives() {
        // Differential check through the simulator: mul-by-8 on negatives.
        let src = "int main() { int s = 0; for (int i = -10; i < 10; i = i + 1) s = s + i * 8; return s; }";
        let mut m1 = ic_lang::compile("t", src).unwrap();
        let m0 = m1.clone();
        run(&mut m1);
        let cfg = ic_machine::MachineConfig::test_tiny();
        let r0 = ic_machine::simulate_default(&m0, &cfg, 100_000).unwrap();
        let r1 = ic_machine::simulate_default(&m1, &cfg, 100_000).unwrap();
        assert_eq!(r0.ret_i64(), r1.ret_i64());
    }
}
