//! Function inlining for small, non-recursive callees.
//!
//! A call site is inlined when the callee has at most [`SIZE_LIMIT`]
//! instructions and is not (transitively) recursive. Mechanics: the
//! callee's blocks are copied into the caller with all registers and
//! block ids offset, argument `Mov`s are prepended, every `Ret` becomes a
//! `Mov` into the call's destination plus a jump to the split-off
//! continuation block.

use ic_ir::{Block, BlockId, Function, Inst, Module, Operand, Reg, Terminator};
use std::collections::HashSet;

/// Callees larger than this are never inlined.
pub const SIZE_LIMIT: usize = 40;

/// Compute the set of functions that may (transitively) call themselves.
fn recursive_set(module: &Module) -> HashSet<usize> {
    let n = module.funcs.len();
    // callees[i] = set of direct callees
    let mut callees: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for (i, f) in module.funcs.iter().enumerate() {
        for b in &f.blocks {
            for inst in &b.insts {
                if let Inst::Call { callee, .. } = inst {
                    callees[i].insert(callee.index());
                }
            }
        }
    }
    // Transitive closure (tiny graphs: simple iteration).
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            let reach: Vec<usize> = callees[i].iter().copied().collect();
            for j in reach {
                let extra: Vec<usize> = callees[j].difference(&callees[i]).copied().collect();
                if !extra.is_empty() {
                    callees[i].extend(extra);
                    changed = true;
                }
            }
        }
    }
    (0..n).filter(|&i| callees[i].contains(&i)).collect()
}

/// Inline a single call site in `caller` (block `bi`, instruction `ii`).
fn inline_site(caller: &mut Function, callee: &Function, bi: usize, ii: usize) {
    let (dst, args) = match &caller.blocks[bi].insts[ii] {
        Inst::Call { dst, args, .. } => (*dst, args.clone()),
        other => panic!("inline_site: not a call: {:?}", other),
    };

    let reg_off = caller.num_regs() as u32;
    let blk_off = caller.blocks.len() as u32;
    // Import callee registers.
    for &ty in &callee.reg_tys {
        caller.reg_tys.push(ty);
    }
    let map_reg = |r: Reg| Reg(r.0 + reg_off);
    let map_blk = |b: BlockId| BlockId(b.0 + blk_off);

    // Split the caller block: everything after the call moves to a fresh
    // continuation block that inherits the original terminator.
    let cont_insts: Vec<Inst> = caller.blocks[bi].insts.split_off(ii + 1);
    caller.blocks[bi].insts.pop(); // remove the call itself
    let cont_term = std::mem::replace(
        &mut caller.blocks[bi].term,
        Terminator::Jump(BlockId(blk_off + callee.blocks.len() as u32)),
    );

    // Bind arguments.
    for (a, &p) in args.iter().zip(&callee.params) {
        caller.blocks[bi].insts.push(Inst::Mov {
            dst: map_reg(p),
            src: *a,
        });
    }
    caller.blocks[bi].term = Terminator::Jump(map_blk(BlockId(0)));

    let cont_id = BlockId(blk_off + callee.blocks.len() as u32);

    // Copy callee blocks with remapping.
    for cb in &callee.blocks {
        let mut nb = Block::new();
        for inst in &cb.insts {
            let mut ni = inst.clone();
            if let Some(d) = ni.def() {
                ni.set_def(map_reg(d));
            }
            ni.for_each_use_mut(|op| {
                if let Operand::Reg(r) = op {
                    *op = Operand::Reg(map_reg(*r));
                }
            });
            nb.insts.push(ni);
        }
        nb.term = match &cb.term {
            Terminator::Jump(t) => Terminator::Jump(map_blk(*t)),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let mut c = *cond;
                if let Operand::Reg(r) = c {
                    c = Operand::Reg(map_reg(r));
                }
                Terminator::Branch {
                    cond: c,
                    then_bb: map_blk(*then_bb),
                    else_bb: map_blk(*else_bb),
                }
            }
            Terminator::Ret(v) => {
                if let (Some(d), Some(val)) = (dst, v) {
                    let mut src = *val;
                    if let Operand::Reg(r) = src {
                        src = Operand::Reg(map_reg(r));
                    }
                    nb.insts.push(Inst::Mov { dst: d, src });
                }
                Terminator::Jump(cont_id)
            }
        };
        caller.blocks.push(nb);
    }

    // The continuation block.
    caller.blocks.push(Block {
        insts: cont_insts,
        term: cont_term,
    });
    debug_assert_eq!(caller.blocks.len() as u32, cont_id.0 + 1);
}

/// Run one inlining wave over the module (each function inlines at most
/// one call site per wave, repeated to a bounded fixpoint by the caller
/// sequencing `inline` multiple times). Returns true if any site inlined.
pub fn run(module: &mut Module) -> bool {
    let recursive = recursive_set(module);
    let sizes: Vec<usize> = module.funcs.iter().map(|f| f.num_insts()).collect();
    let mut changed = false;

    for caller_idx in 0..module.funcs.len() {
        // Find a call site worth inlining.
        let mut site: Option<(usize, usize, usize)> = None;
        'outer: for (bi, b) in module.funcs[caller_idx].blocks.iter().enumerate() {
            for (ii, inst) in b.insts.iter().enumerate() {
                if let Inst::Call { callee, .. } = inst {
                    let ci = callee.index();
                    if ci != caller_idx && !recursive.contains(&ci) && sizes[ci] <= SIZE_LIMIT {
                        site = Some((bi, ii, ci));
                        break 'outer;
                    }
                }
            }
        }
        if let Some((bi, ii, ci)) = site {
            let callee = module.funcs[ci].clone();
            inline_site(&mut module.funcs[caller_idx], &callee, bi, ii);
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_machine::{simulate_default, MachineConfig};

    fn exec(m: &ic_ir::Module) -> (Option<i64>, u64) {
        let r = simulate_default(m, &MachineConfig::test_tiny(), 10_000_000).unwrap();
        (r.ret_i64(), r.mem.checksum())
    }

    #[test]
    fn inlines_small_leaf() {
        let src = "int sq(int x) { return x * x; }
                   int main() { return sq(6) + sq(7); }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        assert!(run(&mut m1));
        // run waves until no more call sites in main
        while run(&mut m1) {}
        ic_ir::verify::verify_module(&m1).unwrap();
        assert_eq!(exec(&m0), exec(&m1));
        assert_eq!(exec(&m1).0, Some(85));
        // No calls remain in main.
        let main = &m1.funcs[m1.entry.index()];
        let calls = main
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Call { .. }))
            .count();
        assert_eq!(calls, 0);
    }

    #[test]
    fn skips_recursive() {
        let src = "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
                   int main() { return fib(10); }";
        let mut m = ic_lang::compile("t", src).unwrap();
        assert!(!run(&mut m), "recursive callee must not be inlined");
        assert_eq!(exec(&m).0, Some(55));
    }

    #[test]
    fn skips_mutually_recursive() {
        let src = "int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
                   int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
                   int main() { return is_even(10); }";
        let mut m = ic_lang::compile("t", src).unwrap();
        assert!(!run(&mut m));
        assert_eq!(exec(&m).0, Some(1));
    }

    #[test]
    fn inlines_with_control_flow_and_sides() {
        let src = "int g[2];
            int clamp(int x) { if (x > 10) { g[0] = g[0] + 1; return 10; } return x; }
            int main() {
                int s = 0;
                for (int i = 0; i < 20; i = i + 1) s = s + clamp(i);
                return s + g[0];
            }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        while run(&mut m1) {}
        ic_ir::verify::verify_module(&m1).unwrap();
        assert_eq!(exec(&m0), exec(&m1));
    }

    #[test]
    fn void_callee_inlined() {
        let src = "int g[1];
            void poke(int v) { g[0] = v; }
            int main() { poke(9); return g[0]; }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        while run(&mut m1) {}
        ic_ir::verify::verify_module(&m1).unwrap();
        assert_eq!(exec(&m1).0, Some(9));
    }

    #[test]
    fn big_callee_skipped() {
        // Generate a callee over the size limit.
        let mut body = String::from("int big(int x) { int s = x;\n");
        for _ in 0..SIZE_LIMIT {
            body.push_str("s = s + 1;\n");
        }
        body.push_str("return s; } int main() { return big(1); }");
        let mut m = ic_lang::compile("t", &body).unwrap();
        assert!(!run(&mut m));
    }
}
