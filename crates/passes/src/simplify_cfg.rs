//! CFG cleanup: fold constant branches, thread trivial jumps, merge
//! straight-line block pairs, and delete unreachable blocks.

use ic_ir::cfg::Cfg;
use ic_ir::rewrite::remove_unreachable_blocks;
use ic_ir::{BlockId, Function, Module, Operand, Terminator};

/// One simplification round; returns true if anything changed.
fn round(f: &mut Function) -> bool {
    let mut changed = false;

    // 1. Constant branches -> jumps.
    for block in &mut f.blocks {
        if let Terminator::Branch {
            cond: Operand::ImmI(c),
            then_bb,
            else_bb,
        } = block.term
        {
            block.term = Terminator::Jump(if c != 0 { then_bb } else { else_bb });
            changed = true;
        }
        // Branch with identical arms -> jump.
        if let Terminator::Branch {
            then_bb, else_bb, ..
        } = block.term
        {
            if then_bb == else_bb {
                block.term = Terminator::Jump(then_bb);
                changed = true;
            }
        }
    }

    // 2. Jump threading: an edge into an *empty* block that just jumps on
    //    is redirected to its target.
    let trampoline: Vec<Option<BlockId>> = f
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| match (&b.insts.is_empty(), &b.term) {
            (true, Terminator::Jump(t)) if t.index() != i => Some(*t),
            _ => None,
        })
        .collect();
    for block in &mut f.blocks {
        block.term.for_each_succ_mut(|s| {
            // Follow at most a short chain to avoid cycles of empties.
            let mut hops = 0;
            while let Some(t) = trampoline[s.index()] {
                if hops > 8 || t == *s {
                    break;
                }
                *s = t;
                hops += 1;
                changed = true;
            }
        });
    }

    // 3. Merge `a -> b` when a ends in Jump(b) and b has exactly one
    //    (syntactic, reachable) predecessor and b != entry and a != b.
    let cfg = Cfg::compute(f);
    let nb = f.blocks.len();
    for a_idx in 0..nb {
        let a = BlockId(a_idx as u32);
        if !cfg.is_reachable(a) {
            continue;
        }
        let target = match f.block(a).term {
            Terminator::Jump(t) => t,
            _ => continue,
        };
        if target == a || target.index() == 0 {
            continue;
        }
        let preds: Vec<_> = cfg
            .preds(target)
            .iter()
            .filter(|p| cfg.is_reachable(**p))
            .collect();
        if preds.len() != 1 {
            continue;
        }
        // Splice b into a.
        let b_block = std::mem::take(&mut f.blocks[target.index()]);
        let a_block = &mut f.blocks[a_idx];
        a_block.insts.extend(b_block.insts);
        a_block.term = b_block.term;
        // Leave the husk of b unreachable (self-loop) for step 4.
        f.blocks[target.index()].term = Terminator::Jump(target);
        changed = true;
        break; // CFG facts are stale; re-run the round.
    }

    // 4. Drop unreachable blocks.
    if remove_unreachable_blocks(f) > 0 {
        changed = true;
    }
    changed
}

/// Run to fixpoint per function; returns true if anything changed.
pub fn run(module: &mut Module) -> bool {
    let mut changed = false;
    for f in &mut module.funcs {
        let mut guard = 0;
        while round(f) {
            changed = true;
            guard += 1;
            if guard > 200 {
                break;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_ir::builder::FunctionBuilder;
    use ic_ir::{BinOp, Ty};

    #[test]
    fn constant_branch_prunes_dead_arm() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        let t = b.new_block();
        let e = b.new_block();
        b.branch(1i64, t, e);
        b.switch_to(t);
        b.ret(Some(1i64.into()));
        b.switch_to(e);
        b.ret(Some(0i64.into()));
        m.add_func(b.finish());
        assert!(run(&mut m));
        // entry + taken arm merged, dead arm gone
        let f = &m.funcs[0];
        assert_eq!(f.blocks.len(), 1);
        assert!(matches!(
            f.blocks[0].term,
            Terminator::Ret(Some(Operand::ImmI(1)))
        ));
    }

    #[test]
    fn merges_straightline_chain() {
        let mut m = m_with_chain();
        assert!(run(&mut m));
        assert_eq!(m.funcs[0].blocks.len(), 1);
        assert_eq!(m.funcs[0].blocks[0].insts.len(), 2);
        ic_ir::verify::verify_module(&m).unwrap();
    }

    fn m_with_chain() -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        let b1 = b.new_block();
        let b2 = b.new_block();
        let x = b.bin(BinOp::Add, 5i64, 1i64);
        b.jump(b1);
        b.switch_to(b1);
        let y = b.bin(BinOp::Mul, x, 2i64);
        b.jump(b2);
        b.switch_to(b2);
        b.ret(Some(y.into()));
        m.add_func(b.finish());
        m
    }

    #[test]
    fn threads_empty_blocks() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let hop = b.new_block();
        let dest = b.new_block();
        let other = b.new_block();
        let c = b.bin(BinOp::Gt, p, 0i64);
        b.branch(c, hop, other);
        b.switch_to(hop); // empty: just jumps
        b.jump(dest);
        b.switch_to(dest);
        b.ret(Some(1i64.into()));
        b.switch_to(other);
        b.ret(Some(0i64.into()));
        m.add_func(b.finish());
        assert!(run(&mut m));
        // The branch's then-edge now points straight at dest's code.
        let f = &m.funcs[0];
        match f.blocks[0].term {
            Terminator::Branch { then_bb, .. } => {
                assert!(matches!(
                    f.blocks[then_bb.index()].term,
                    Terminator::Ret(Some(Operand::ImmI(1)))
                ));
            }
            ref other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn loop_structure_preserved() {
        let mut m = ic_lang::compile(
            "t",
            "int main() { int s = 0; for (int i = 0; i < 10; i = i + 1) s = s + i; return s; }",
        )
        .unwrap();
        run(&mut m);
        ic_ir::verify::verify_module(&m).unwrap();
        // Still runs correctly.
        let cfg = ic_machine::MachineConfig::test_tiny();
        let r = ic_machine::simulate_default(&m, &cfg, 100_000).unwrap();
        assert_eq!(r.ret_i64(), Some(45));
    }

    #[test]
    fn identical_arm_branch_folds() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let j = b.new_block();
        let c = b.bin(BinOp::Gt, p, 0i64);
        b.branch(c, j, j);
        b.switch_to(j);
        b.ret(Some(p.into()));
        m.add_func(b.finish());
        assert!(run(&mut m));
        assert_eq!(m.funcs[0].blocks.len(), 1);
    }
}
