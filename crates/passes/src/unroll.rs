//! Loop unrolling for canonical counted loops.
//!
//! Recognized shape (exactly what the MinC `for` lowering produces):
//!
//! ```text
//! header:  c = lt/le i, bound      ; single compare, used only by branch
//!          br c, <into loop>, <exit>
//! body...: any subgraph with all in-loop back edges going to header
//! latch:   contains the unique in-loop def of i:  i = add i, +step
//! ```
//!
//! The transformation keeps the original loop as the remainder loop and
//! adds a *guarded unrolled loop* in front of it:
//!
//! ```text
//! uheader: t = i + (F-1)*step ; c' = lt/le t, bound
//!          br c', copy1, header
//! copy1..copyF: copies of the body subgraph, edge-to-header chained to
//!               the next copy, the last copy jumping back to uheader
//! ```
//!
//! Because the IR is not SSA, a body copy *is* one full iteration —
//! registers carry values from copy to copy with no renaming needed.
//! Early exits (breaks) inside copies keep their original out-of-loop
//! targets and remain correct: the guard only replaces the header test.
//!
//! The guard uses the same wrapping arithmetic as the IR's `add`, so the
//! transformation is exact even at the i64 boundary.

use ic_ir::cfg::Cfg;
use ic_ir::dom::Dominators;
use ic_ir::loops::LoopForest;
use ic_ir::{BinOp, Block, BlockId, Function, Inst, Module, Operand, Reg, Terminator, Ty};
use std::collections::HashSet;

/// A recognized unrollable loop.
struct Candidate {
    header: BlockId,
    /// Loop entry block (header's in-loop successor).
    enter: BlockId,
    exit: BlockId,
    body: Vec<BlockId>,
    cmp_op: BinOp,
    ind: Reg,
    bound: Operand,
    step: i64,
}

fn find_candidates(f: &Function) -> Vec<Candidate> {
    let cfg = Cfg::compute(f);
    let dom = Dominators::compute(f, &cfg);
    let forest = LoopForest::compute(f, &cfg, &dom);

    let mut out = Vec::new();
    'loops: for lp in forest.innermost() {
        let header = lp.header;
        let hblock = f.block(header);
        // Header must be exactly [cmp] + branch on it.
        if hblock.insts.len() != 1 {
            continue;
        }
        let (cmp_op, ind, bound) = match &hblock.insts[0] {
            Inst::Bin {
                op: op @ (BinOp::Lt | BinOp::Le),
                dst,
                a: Operand::Reg(i),
                b,
            } => {
                // cmp result used only by the branch
                match &hblock.term {
                    Terminator::Branch {
                        cond: Operand::Reg(c),
                        ..
                    } if c == dst => {}
                    _ => continue,
                }
                (*op, *i, *b)
            }
            _ => continue,
        };
        let (enter, exit) = match &hblock.term {
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                if lp.contains(*then_bb) && !lp.contains(*else_bb) {
                    (*then_bb, *else_bb)
                } else {
                    continue;
                }
            }
            _ => continue,
        };
        // Bound must be invariant: imm, or a register never defined in loop.
        let body: Vec<BlockId> = lp.body.iter().copied().filter(|b| *b != header).collect();
        let defined_in = |r: Reg| -> bool {
            body.iter()
                .chain([&header])
                .any(|&b| f.block(b).insts.iter().any(|inst| inst.def() == Some(r)))
        };
        if let Operand::Reg(r) = bound {
            if defined_in(r) {
                continue;
            }
        }
        // The induction variable must have exactly one in-loop def, in
        // one of two shapes:
        //   i = add i, +imm                    (hand-built IR)
        //   t = add i, +imm ... mov i, t       (the MinC lowering idiom)
        let mut step: Option<i64> = None;
        let mut defs = 0;
        for &b in &body {
            let insts = &f.block(b).insts;
            for (pos, inst) in insts.iter().enumerate() {
                if inst.def() != Some(ind) {
                    continue;
                }
                defs += 1;
                match inst {
                    Inst::Bin {
                        op: BinOp::Add,
                        dst,
                        a: Operand::Reg(x),
                        b: Operand::ImmI(s),
                    } if dst == x && *x == ind && *s > 0 => step = Some(*s),
                    Inst::Mov {
                        src: Operand::Reg(t),
                        ..
                    } => {
                        // Find `t = add i, +imm` earlier in the same block
                        // with no intervening redefinition of t or i.
                        let mut found = None;
                        for prev in insts[..pos].iter().rev() {
                            if prev.def() == Some(*t) {
                                if let Inst::Bin {
                                    op: BinOp::Add,
                                    a: Operand::Reg(x),
                                    b: Operand::ImmI(s),
                                    ..
                                } = prev
                                {
                                    if *x == ind && *s > 0 {
                                        found = Some(*s);
                                    }
                                }
                                break;
                            }
                            if prev.def() == Some(ind) {
                                break;
                            }
                        }
                        match found {
                            Some(s) => step = Some(s),
                            None => continue 'loops,
                        }
                    }
                    _ => {
                        continue 'loops;
                    }
                }
            }
        }
        // Header must not define ind (it doesn't: single cmp).
        let (Some(step), 1) = (step, defs) else {
            continue;
        };
        // Calls inside the body are fine: a copy is still just a repeated
        // iteration.
        out.push(Candidate {
            header,
            enter,
            exit,
            body,
            cmp_op,
            ind,
            bound,
            step,
        });
    }
    out
}

/// Copy the body subgraph once. `edge_to_header_goes` is where copies of
/// back edges should point. Returns the id of the copied `enter` block.
fn copy_body(
    f: &mut Function,
    body: &[BlockId],
    header: BlockId,
    enter: BlockId,
    edge_to_header_goes: BlockId,
) -> BlockId {
    let base = f.blocks.len() as u32;
    let body_set: HashSet<BlockId> = body.iter().copied().collect();
    // old body block -> new id (dense, in body order)
    let new_id = |old: BlockId| -> BlockId {
        let pos = body.iter().position(|b| *b == old).expect("in body");
        BlockId(base + pos as u32)
    };
    for &ob in body {
        let src = f.block(ob).clone();
        let mut nb = Block {
            insts: src.insts,
            term: src.term,
        };
        nb.term.for_each_succ_mut(|s| {
            if *s == header {
                *s = edge_to_header_goes;
            } else if body_set.contains(s) {
                *s = new_id(*s);
            }
            // else: early exit out of the loop — keep as is.
        });
        f.blocks.push(nb);
    }
    new_id(enter)
}

/// Unroll every eligible innermost loop once by `factor`. Returns true if
/// any loop was transformed.
///
/// All candidates are found *before* transforming: the remainder loop a
/// transform leaves behind still matches the canonical shape, and
/// re-searching would unroll it again ad infinitum. (A later `unrollN` in
/// a sequence does unroll remainders once more — harmless, and the
/// paper's unroll-at-most-once-per-sequence rule bounds it.)
pub fn run(module: &mut Module, factor: u32) -> bool {
    assert!(factor >= 2, "unroll factor must be >= 2");
    let mut changed = false;
    for f in &mut module.funcs {
        for c in find_candidates(f) {
            transform(f, &c, factor);
            changed = true;
        }
    }
    changed
}

fn transform(f: &mut Function, c: &Candidate, factor: u32) {
    // New registers for the guard computation.
    let t = f.new_reg(Ty::I64);
    let cnew = f.new_reg(Ty::I64);

    // uheader block (created first so copies can target it).
    let uheader = f.add_block();

    // Copies: copyK's back edge goes to copy(K+1)'s entry; the last goes
    // back to uheader. Build last-to-first so targets exist.
    // copy indices 1..factor-1 are fresh copies; "copy 0" is... also a
    // fresh copy (the original body stays as the remainder loop).
    let mut next_entry = uheader;
    let mut entries: Vec<BlockId> = Vec::new();
    for _ in 0..factor {
        let entry = copy_body(f, &c.body, c.header, c.enter, next_entry);
        entries.push(entry);
        next_entry = entry;
    }
    let first_entry = *entries.last().expect("factor >= 2");

    // Guard: t = i + (factor-1)*step ; cnew = cmp t, bound ; br cnew, first_copy, header
    let lead = (factor as i64 - 1).wrapping_mul(c.step);
    let ub = f.block_mut(uheader);
    ub.insts.push(Inst::Bin {
        op: BinOp::Add,
        dst: t,
        a: Operand::Reg(c.ind),
        b: Operand::ImmI(lead),
    });
    ub.insts.push(Inst::Bin {
        op: c.cmp_op,
        dst: cnew,
        a: Operand::Reg(t),
        b: c.bound,
    });
    ub.term = Terminator::Branch {
        cond: Operand::Reg(cnew),
        then_bb: first_entry,
        else_bb: c.header,
    };
    let _ = c.exit;

    // Redirect outside entries into the loop: every edge into the header
    // from a non-body block now goes to uheader.
    let body_set: HashSet<BlockId> = c.body.iter().copied().collect();
    let nb = f.blocks.len();
    for bi in 0..nb {
        let bid = BlockId(bi as u32);
        if bid == uheader || body_set.contains(&bid) {
            continue;
        }
        // Copies must keep their internal chain (they point at entries /
        // uheader, not the header) — only true header edges move.
        if entries.contains(&bid) {
            continue;
        }
        // Skip blocks that belong to a copy (ids >= first copy base).
        // Copies' edges to header were already rewritten during copying.
        f.blocks[bi].term.for_each_succ_mut(|s| {
            if *s == c.header {
                *s = uheader;
            }
        });
    }
    // ...but the remainder loop's own latch must still target the original
    // header. The loop body blocks were excluded above, so their back
    // edges are intact.
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_machine::{simulate_default, Counter, MachineConfig};

    fn exec(m: &Module) -> (Option<i64>, u64, u64) {
        let r = simulate_default(m, &MachineConfig::vliw_c6713_like(), 50_000_000).unwrap();
        (
            r.ret_i64(),
            r.mem.checksum(),
            r.counters.get(Counter::BR_INS),
        )
    }

    #[test]
    fn unrolls_simple_counted_loop() {
        let src =
            "int main() { int s = 0; for (int i = 0; i < 100; i = i + 1) s = s + i; return s; }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        assert!(run(&mut m1, 4));
        ic_ir::verify::verify_module(&m1).unwrap();
        let (r0, mem0, br0) = exec(&m0);
        let (r1, mem1, br1) = exec(&m1);
        assert_eq!(r0, r1);
        assert_eq!(mem0, mem1);
        assert!(
            br1 < br0,
            "unrolling must reduce dynamic branches: {br1} vs {br0}"
        );
    }

    #[test]
    fn remainder_iterations_handled() {
        // 103 % 4 != 0: remainder loop must pick up the tail.
        for n in [1, 2, 3, 7, 103] {
            let src = format!(
                "int main() {{ int s = 0; for (int i = 0; i < {n}; i = i + 1) s = s + i * i; return s; }}"
            );
            let m0 = ic_lang::compile("t", &src).unwrap();
            let mut m1 = m0.clone();
            run(&mut m1, 4);
            assert_eq!(exec(&m0).0, exec(&m1).0, "n = {n}");
        }
    }

    #[test]
    fn non_unit_step() {
        let src =
            "int main() { int s = 0; for (int i = 0; i < 50; i = i + 3) s = s + i; return s; }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        assert!(run(&mut m1, 2));
        assert_eq!(exec(&m0).0, exec(&m1).0);
    }

    #[test]
    fn loop_with_memory_and_branch_in_body() {
        let src = "int a[64]; int main() {
            for (int i = 0; i < 64; i = i + 1) {
                if (i % 3 == 0) a[i] = i * 2; else a[i] = i;
            }
            int s = 0;
            for (int i = 0; i < 64; i = i + 1) s = s + a[i];
            return s;
        }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        assert!(run(&mut m1, 4));
        ic_ir::verify::verify_module(&m1).unwrap();
        let (r0, mem0, _) = exec(&m0);
        let (r1, mem1, _) = exec(&m1);
        assert_eq!(r0, r1);
        assert_eq!(mem0, mem1);
    }

    #[test]
    fn break_inside_loop_prevents_or_survives() {
        // A break exits from a body copy directly; must stay correct.
        let src = "int main() {
            int s = 0;
            for (int i = 0; i < 1000; i = i + 1) {
                if (i == 37) break;
                s = s + i;
            }
            return s;
        }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        run(&mut m1, 4);
        ic_ir::verify::verify_module(&m1).unwrap();
        assert_eq!(exec(&m0).0, exec(&m1).0);
    }

    #[test]
    fn while_loop_not_matching_shape_untouched() {
        // while with a complex condition (two insts in header) is skipped.
        let src = "int main() {
            int i = 0;
            while (i * i < 50) { i = i + 1; }
            return i;
        }";
        let mut m = ic_lang::compile("t", src).unwrap();
        assert!(!run(&mut m, 4));
    }

    #[test]
    fn nested_loops_unroll_inner() {
        let src = "int main() {
            int s = 0;
            for (int i = 0; i < 10; i = i + 1)
                for (int j = 0; j < 10; j = j + 1)
                    s = s + i * j;
            return s;
        }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        assert!(run(&mut m1, 2));
        ic_ir::verify::verify_module(&m1).unwrap();
        assert_eq!(exec(&m0).0, exec(&m1).0);
    }

    #[test]
    fn le_bound_loops() {
        // `for (i = 1; i <= n; ...)` style via while: craft with for+Le by
        // using a <= comparison through MinC.
        let src = "int main() {
            int s = 0;
            for (int i = 1; i <= 9; i = i + 1) s = s + i;
            return s;
        }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        assert!(run(&mut m1, 4));
        assert_eq!(exec(&m1).0, Some(45));
        assert_eq!(exec(&m0).0, exec(&m1).0);
    }

    #[test]
    fn factor_eight() {
        let src =
            "int main() { int s = 0; for (int i = 0; i < 64; i = i + 1) s = s + 2; return s; }";
        let m0 = ic_lang::compile("t", src).unwrap();
        let mut m1 = m0.clone();
        assert!(run(&mut m1, 8));
        assert_eq!(exec(&m0).0, exec(&m1).0);
        // 8x unroll: branch count should drop by roughly 8x on the hot loop.
        let (_, _, br0) = exec(&m0);
        let (_, _, br1) = exec(&m1);
        assert!(br1 * 4 < br0, "8x unroll: {br1} vs {br0}");
    }
}
