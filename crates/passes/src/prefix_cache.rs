//! Prefix-tree compilation cache — elide shared pipeline prefixes.
//!
//! Sequence search evaluates hundreds of thousands of candidate pass
//! pipelines against the *same* `-O0` module, and lexicographic
//! enumeration (see `ic-search::exhaustive`) means consecutive candidates
//! typically share a length-4 prefix. Re-running that shared prefix for
//! every candidate wastes most of the compile time: the whole-sequence
//! evaluation cache (`ic-search::CachedEvaluator`) only dedups *identical*
//! sequences.
//!
//! [`PrefixCache`] is a thread-safe trie keyed by pass-sequence prefixes.
//! Each node holds the IR module *after* applying that prefix to the base
//! module, shared behind an `Arc`; applying a sequence walks down to the
//! deepest cached prefix, copies that module out (copy-on-write into the
//! next pass), and only runs the suffix passes. The trie is stored as a
//! flat `prefix -> node` map — equivalent to a pointer-linked trie, but a
//! node stays useful even after its ancestors are evicted.
//!
//! The cache **elides work, never changes it**: [`PrefixCache::apply_cached`]
//! returns a module (and changed-pass count) bit-identical to
//! `base.clone()` + [`crate::apply_sequence`]. Passes are deterministic
//! functions of the module, so a cached post-prefix module is
//! indistinguishable from a freshly computed one.
//!
//! Memory is bounded by an LRU over trie nodes with a configurable byte
//! budget ([`PrefixCacheConfig::byte_budget`]); module sizes are estimated
//! (see [`approx_module_bytes`]), and eviction drops the
//! least-recently-touched node first. Only *proper* prefixes are cached —
//! the full-length module is returned to the caller, not stored, because
//! identical whole sequences are already deduped one level up by the
//! evaluation cache.
//!
//! Concurrency: one `parking_lot` mutex guards the trie; it is held for
//! map walks and insertions only, never across a pass application or a
//! module clone. Concurrent misses on the same prefix may both compute
//! it (the results are identical; first insert wins), exactly like the
//! evaluation cache's miss path.

use crate::Opt;
use ic_ir::Module;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning knobs for a [`PrefixCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixCacheConfig {
    /// LRU byte budget over cached post-prefix modules (estimated via
    /// [`approx_module_bytes`]). The default is sized for the paper's
    /// length-5 sequences over 13 opts: a lexicographic sweep keeps at
    /// most a few thousand warm prefix nodes of workload-sized modules,
    /// which fits comfortably in 64 MiB.
    pub byte_budget: usize,
}

impl Default for PrefixCacheConfig {
    fn default() -> Self {
        PrefixCacheConfig {
            byte_budget: 64 << 20,
        }
    }
}

/// A point-in-time view of compile-cache activity.
///
/// Since the `ic-obs` unification this is the workspace-wide
/// [`ic_obs::CompileCacheStats`], re-exported under its historical
/// path; it slots directly into an [`ic_obs::Snapshot`]'s
/// `compile_cache` field.
pub use ic_obs::CompileCacheStats;

/// Rough resident size of a module, for LRU accounting. Counts
/// instructions, blocks, registers and array declarations at fixed
/// per-item costs; exact heap usage is unknowable cheaply and the budget
/// only needs the right order of magnitude.
pub fn approx_module_bytes(m: &Module) -> usize {
    let mut bytes = std::mem::size_of::<Module>() + m.name.len();
    for f in &m.funcs {
        bytes += std::mem::size_of::<ic_ir::Function>() + f.name.len();
        bytes += f.reg_tys.len() * 8 + f.params.len() * 8;
        for b in &f.blocks {
            bytes += std::mem::size_of::<ic_ir::Block>();
            bytes += b.insts.len() * std::mem::size_of::<ic_ir::Inst>();
        }
    }
    bytes += m.arrays.len() * std::mem::size_of::<ic_ir::ArrayDecl>();
    bytes
}

/// A trie node: the module after applying the node's prefix to the base
/// module, plus how many of those prefix passes reported a change (so
/// cached applications return the same changed count as uncached ones).
struct Node {
    module: Arc<Module>,
    changed: usize,
    bytes: usize,
    last_touch: u64,
}

/// Flat trie state under the mutex.
struct Trie {
    map: HashMap<Box<[Opt]>, Node>,
    bytes: usize,
    tick: u64,
}

/// A thread-safe prefix-tree compilation cache over a fixed base module.
///
/// See the module docs for the design; in short:
/// [`PrefixCache::apply_cached`] is a drop-in replacement for
/// `base.clone()` + [`crate::apply_sequence`] that skips the longest
/// already-compiled prefix.
pub struct PrefixCache {
    base: Arc<Module>,
    inner: Mutex<Trie>,
    budget: usize,
    profiler: Option<ic_obs::PassProfiler>,
    hits: AtomicU64,
    misses: AtomicU64,
    passes_run: AtomicU64,
    passes_elided: AtomicU64,
    evictions: AtomicU64,
}

impl PrefixCache {
    /// A cache over `base` with the default byte budget.
    pub fn new(base: Module) -> Self {
        PrefixCache::with_config(base, PrefixCacheConfig::default())
    }

    /// A cache over `base` with an explicit configuration.
    pub fn with_config(base: Module, config: PrefixCacheConfig) -> Self {
        PrefixCache::with_profiler(base, config, None)
    }

    /// A cache that also records every pass it actually runs into
    /// `profiler` (elided prefix passes are, by definition, not run and
    /// not recorded). Profiling is observation-only: cached results
    /// stay bit-identical to the unprofiled path.
    pub fn with_profiler(
        base: Module,
        config: PrefixCacheConfig,
        profiler: Option<ic_obs::PassProfiler>,
    ) -> Self {
        PrefixCache {
            base: Arc::new(base),
            inner: Mutex::new(Trie {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            budget: config.byte_budget,
            profiler,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            passes_run: AtomicU64::new(0),
            passes_elided: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The profiler recording this cache's pass applications, if any.
    pub fn profiler(&self) -> Option<&ic_obs::PassProfiler> {
        self.profiler.as_ref()
    }

    /// The unoptimized base module every sequence is applied to.
    pub fn base(&self) -> &Module {
        &self.base
    }

    /// Current statistics.
    pub fn stats(&self) -> CompileCacheStats {
        let (nodes, bytes) = {
            let t = self.inner.lock();
            (t.map.len(), t.bytes)
        };
        CompileCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            passes_run: self.passes_run.load(Ordering::Relaxed),
            passes_elided: self.passes_elided.load(Ordering::Relaxed),
            nodes,
            bytes,
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Apply `seq` to the base module, reusing the deepest cached prefix.
    /// Returns the optimized module and the number of passes that
    /// reported a change — both bit-identical to
    /// `{ let mut m = base.clone(); apply_sequence(&mut m, seq) }`.
    pub fn apply_cached(&self, seq: &[Opt]) -> (Module, usize) {
        // Find the deepest cached proper prefix (Arc clone only; the
        // deep copy happens outside the lock).
        let (start, depth, mut changed) = {
            let mut t = self.inner.lock();
            t.tick += 1;
            let tick = t.tick;
            let mut found = None;
            for d in (1..seq.len()).rev() {
                if let Some(node) = t.map.get_mut(&seq[..d]) {
                    node.last_touch = tick;
                    found = Some((Arc::clone(&node.module), d, node.changed));
                    break;
                }
            }
            found.unwrap_or_else(|| (Arc::clone(&self.base), 0, 0))
        };
        if !seq.is_empty() {
            if depth > 0 {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.passes_elided
                    .fetch_add(depth as u64, Ordering::Relaxed);
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
        }

        // Copy-on-write: the cached post-prefix module stays shared; the
        // suffix passes mutate a private copy.
        let mut module = (*start).clone();
        for (i, &opt) in seq.iter().enumerate().skip(depth) {
            let applied = match &self.profiler {
                Some(prof) => opt.apply_profiled(&mut module, prof),
                None => opt.apply(&mut module),
            };
            if applied {
                changed += 1;
            }
            self.passes_run.fetch_add(1, Ordering::Relaxed);
            debug_assert!(
                ic_ir::verify::verify_module(&module).is_ok(),
                "pass {} corrupted the module: {:?}",
                opt.name(),
                ic_ir::verify::verify_module(&module).err()
            );
            if i + 1 < seq.len() {
                self.insert(&seq[..=i], &module, changed);
            }
        }
        (module, changed)
    }

    /// Insert a post-prefix module if absent, then enforce the byte
    /// budget. Races keep the incumbent (contents are identical anyway).
    fn insert(&self, prefix: &[Opt], module: &Module, changed: usize) {
        let bytes = approx_module_bytes(module);
        if bytes > self.budget {
            return; // one oversized module must not thrash the whole LRU
        }
        let mut evicted = 0u64;
        {
            let mut t = self.inner.lock();
            t.tick += 1;
            let tick = t.tick;
            if let Some(node) = t.map.get_mut(prefix) {
                node.last_touch = tick;
            } else {
                t.map.insert(
                    prefix.into(),
                    Node {
                        module: Arc::new(module.clone()),
                        changed,
                        bytes,
                        last_touch: tick,
                    },
                );
                t.bytes += bytes;
            }
            while t.bytes > self.budget && t.map.len() > 1 {
                let lru = t
                    .map
                    .iter()
                    .min_by_key(|(_, n)| n.last_touch)
                    .map(|(k, _)| k.clone())
                    .expect("non-empty map");
                if let Some(node) = t.map.remove(&lru) {
                    t.bytes -= node.bytes;
                    evicted += 1;
                }
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply_sequence;
    use ic_ir::print::module_to_string;

    fn program() -> Module {
        ic_lang::compile(
            "t",
            "int work(int n) { int s = 0; for (int i = 0; i < n; i = i + 1) s = s + i * 2; return s; }
             int main() { return work(40); }",
        )
        .unwrap()
    }

    fn uncached(base: &Module, seq: &[Opt]) -> (Module, usize) {
        let mut m = base.clone();
        let changed = apply_sequence(&mut m, seq);
        (m, changed)
    }

    #[test]
    fn identical_to_uncached_pipeline() {
        let base = program();
        let cache = PrefixCache::new(base.clone());
        let seqs: Vec<Vec<Opt>> = vec![
            vec![],
            vec![Opt::Dce],
            vec![Opt::ConstProp, Opt::ConstFold, Opt::Dce],
            vec![Opt::ConstProp, Opt::ConstFold, Opt::Cse],
            vec![Opt::ConstProp, Opt::ConstFold, Opt::Cse], // exact repeat
            vec![Opt::Licm, Opt::Unroll4, Opt::Dce, Opt::Schedule],
            vec![Opt::Licm, Opt::Unroll4, Opt::Dce, Opt::Peephole],
            crate::ofast_sequence(),
        ];
        for seq in &seqs {
            let (got, got_changed) = cache.apply_cached(seq);
            let (want, want_changed) = uncached(&base, seq);
            assert_eq!(module_to_string(&got), module_to_string(&want), "{seq:?}");
            assert_eq!(got_changed, want_changed, "{seq:?}");
        }
    }

    #[test]
    fn shared_prefixes_are_elided() {
        let base = program();
        let cache = PrefixCache::new(base);
        let a = [
            Opt::ConstProp,
            Opt::ConstFold,
            Opt::Cse,
            Opt::Dce,
            Opt::Licm,
        ];
        let mut b = a;
        b[4] = Opt::Schedule;
        cache.apply_cached(&a);
        let s0 = cache.stats();
        assert_eq!(s0.misses, 1);
        assert_eq!(s0.passes_run, 5);
        assert_eq!(s0.passes_elided, 0);
        assert_eq!(s0.nodes, 4, "proper prefixes of a cached");

        cache.apply_cached(&b);
        let s1 = cache.stats();
        assert_eq!(s1.hits, 1, "b found a's length-4 prefix");
        assert_eq!(s1.passes_run, 6, "only b's last pass ran");
        assert_eq!(s1.passes_elided, 4);
        assert!(s1.elision_factor() > 1.6);
    }

    #[test]
    fn full_sequences_are_not_cached() {
        let base = program();
        let cache = PrefixCache::new(base);
        let seq = [Opt::Dce, Opt::Cse];
        cache.apply_cached(&seq);
        cache.apply_cached(&seq);
        let s = cache.stats();
        // The repeat elides the length-1 prefix but re-runs the final
        // pass: whole-sequence dedup belongs to the evaluation cache.
        assert_eq!(s.passes_run, 3);
        assert_eq!(s.nodes, 1);
    }

    #[test]
    fn byte_budget_evicts_lru_but_stays_correct() {
        let base = program();
        let node_bytes = approx_module_bytes(&base);
        // Room for only ~2 nodes: a length-5 walk must evict constantly.
        let cache = PrefixCache::with_config(
            base.clone(),
            PrefixCacheConfig {
                byte_budget: node_bytes * 5 / 2,
            },
        );
        let seqs: Vec<Vec<Opt>> = (0..20)
            .map(|k| {
                (0..5)
                    .map(|i| Opt::PAPER_13[(k + i * 3) % Opt::PAPER_13.len()])
                    .filter(|o| !o.is_unroll())
                    .collect()
            })
            .collect();
        for seq in &seqs {
            let (got, changed) = cache.apply_cached(seq);
            let (want, want_changed) = uncached(&base, seq);
            assert_eq!(module_to_string(&got), module_to_string(&want));
            assert_eq!(changed, want_changed);
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "budget was tight enough to evict");
        assert!(s.bytes <= node_bytes * 5 / 2, "budget respected");
    }

    #[test]
    fn oversized_modules_are_never_cached() {
        let base = program();
        let cache = PrefixCache::with_config(base, PrefixCacheConfig { byte_budget: 1 });
        cache.apply_cached(&[Opt::Dce, Opt::Cse, Opt::Licm]);
        let s = cache.stats();
        assert_eq!(s.nodes, 0);
        assert_eq!(s.bytes, 0);
        assert_eq!(s.passes_run, 3, "still compiles, just never caches");
    }

    #[test]
    fn concurrent_applications_are_consistent() {
        let base = program();
        let cache = PrefixCache::new(base.clone());
        let expected = module_to_string(&uncached(&base, &crate::ofast_sequence()).0);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = &cache;
                let expected = &expected;
                scope.spawn(move || {
                    for k in 0..6 {
                        // Everyone hammers overlapping prefixes of ofast.
                        let len = 3 + (t + k) % 10;
                        let seq: Vec<Opt> = crate::ofast_sequence().into_iter().take(len).collect();
                        let (m, _) = cache.apply_cached(&seq);
                        if len == 12 {
                            assert_eq!(&module_to_string(&m), expected);
                        }
                        ic_ir::verify::verify_module(&m).unwrap();
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.lookups(), 48);
        assert!(s.passes_elided > 0, "threads shared prefixes");
    }
}
