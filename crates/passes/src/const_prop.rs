//! Block-local constant propagation.
//!
//! Within each block, tracks registers that currently hold a known
//! immediate (from `Mov r, imm` or a folded op) and rewrites later uses to
//! the immediate. Redefinition invalidates. Purely local — the global
//! story is handled by iterating with `simplify-cfg` (which merges blocks)
//! in a sequence, which is exactly the kind of pass interaction the paper
//! wants the learner to discover.

use ic_ir::{Inst, Module, Operand, Reg};
use std::collections::HashMap;

/// Run over every function; returns true if any use was rewritten.
pub fn run(module: &mut Module) -> bool {
    let mut changed = false;
    for f in &mut module.funcs {
        for block in &mut f.blocks {
            let mut known: HashMap<Reg, Operand> = HashMap::new();
            for inst in &mut block.insts {
                inst.for_each_use_mut(|op| {
                    if let Operand::Reg(r) = op {
                        if let Some(c) = known.get(r) {
                            *op = *c;
                            changed = true;
                        }
                    }
                });
                match inst {
                    Inst::Mov { dst, src } if src.is_imm() => {
                        known.insert(*dst, *src);
                    }
                    _ => {
                        if let Some(d) = inst.def() {
                            known.remove(&d);
                        }
                    }
                }
            }
            block.term.for_each_use_mut(|op| {
                if let Operand::Reg(r) = op {
                    if let Some(c) = known.get(r) {
                        *op = *c;
                        changed = true;
                    }
                }
            });
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_ir::builder::FunctionBuilder;
    use ic_ir::{BinOp, Ty};

    #[test]
    fn propagates_within_block() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        let x = b.new_reg(Ty::I64);
        b.mov(x, 7i64);
        let y = b.bin(BinOp::Add, x, 1i64);
        b.ret(Some(y.into()));
        m.add_func(b.finish());

        assert!(run(&mut m));
        match &m.funcs[0].blocks[0].insts[1] {
            Inst::Bin { a, .. } => assert_eq!(*a, Operand::ImmI(7)),
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn redefinition_invalidates() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let x = b.new_reg(Ty::I64);
        b.mov(x, 7i64);
        b.bin_to(x, BinOp::Add, p, p); // x redefined with unknown
        let y = b.bin(BinOp::Add, x, 1i64);
        b.ret(Some(y.into()));
        m.add_func(b.finish());

        run(&mut m);
        match &m.funcs[0].blocks[0].insts[2] {
            Inst::Bin { a, .. } => assert_eq!(*a, Operand::Reg(x)),
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn does_not_cross_blocks() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        let x = b.new_reg(Ty::I64);
        b.mov(x, 3i64);
        let next = b.new_block();
        b.jump(next);
        b.switch_to(next);
        let y = b.bin(BinOp::Add, x, 1i64);
        b.ret(Some(y.into()));
        m.add_func(b.finish());

        assert!(!run(&mut m), "local pass must not cross block boundaries");
    }

    #[test]
    fn propagates_into_terminator() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        let x = b.new_reg(Ty::I64);
        b.mov(x, 5i64);
        b.ret(Some(x.into()));
        m.add_func(b.finish());

        assert!(run(&mut m));
        assert!(matches!(
            m.funcs[0].blocks[0].term,
            ic_ir::Terminator::Ret(Some(Operand::ImmI(5)))
        ));
    }
}
