//! Global dead-code elimination driven by liveness.
//!
//! An instruction is deleted when its defined register is not live after
//! the instruction and the instruction is removable (pure, non-trapping).
//! Runs per block, walking backwards with the block's live-out set.

use ic_ir::cfg::Cfg;
use ic_ir::liveness::Liveness;
use ic_ir::{Function, Module, Operand};

fn run_function(f: &mut Function) -> bool {
    let cfg = Cfg::compute(f);
    let lv = Liveness::compute(f, &cfg);
    let mut changed = false;
    for (bi, block) in f.blocks.iter_mut().enumerate() {
        let mut live = lv.live_out[bi].clone();
        // Backward scan: delete dead removable defs, update liveness.
        let mut keep = vec![true; block.insts.len()];
        // Terminator uses are part of live-out computation already? No:
        // live_out excludes the block's own terminator uses. Add them.
        block.term.for_each_use(|op| {
            if let Operand::Reg(r) = op {
                live.insert(*r);
            }
        });
        for (i, inst) in block.insts.iter().enumerate().rev() {
            let dead = match inst.def() {
                Some(d) => !live.contains(d),
                None => false,
            };
            if dead && inst.is_removable_if_dead() {
                keep[i] = false;
                changed = true;
                continue;
            }
            if let Some(d) = inst.def() {
                live.remove(d);
            }
            inst.for_each_use(|op| {
                if let Operand::Reg(r) = op {
                    live.insert(*r);
                }
            });
        }
        let mut i = 0;
        block.insts.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
    }
    changed
}

/// Run DCE to a per-function fixpoint (removing one dead instruction can
/// expose another). Returns true if anything was removed.
pub fn run(module: &mut Module) -> bool {
    let mut changed = false;
    for f in &mut module.funcs {
        // Each run_function pass already cascades within a block via the
        // backward scan; iterate for cross-block cascades.
        while run_function(f) {
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_ir::builder::FunctionBuilder;
    use ic_ir::{BinOp, ElemClass, Inst, Ty};

    #[test]
    fn removes_dead_chain() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let d1 = b.bin(BinOp::Add, p, 1i64);
        let _d2 = b.bin(BinOp::Mul, d1, 3i64); // only user of d1, itself dead
        b.ret(Some(p.into()));
        m.add_func(b.finish());
        assert!(run(&mut m));
        assert!(m.funcs[0].blocks[0].insts.is_empty(), "whole chain removed");
    }

    #[test]
    fn keeps_stores_and_calls() {
        let mut m = Module::new("t");
        let arr = m.add_array("a", ElemClass::Int, 4);
        let mut cal = FunctionBuilder::new("side", &[], Some(Ty::I64));
        cal.store(arr, 0i64, 1i64);
        cal.ret(Some(0i64.into()));
        let callee = m.add_func(cal.finish());

        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        let dead_result = b.call(Ty::I64, callee, vec![]);
        let _ = dead_result;
        b.store(arr, 1i64, 2i64);
        b.ret(Some(0i64.into()));
        let main = m.add_func(b.finish());
        m.entry = main;

        run(&mut m);
        let main = &m.funcs[1];
        assert!(matches!(main.blocks[0].insts[0], Inst::Call { .. }));
        assert!(matches!(main.blocks[0].insts[1], Inst::Store { .. }));
    }

    #[test]
    fn keeps_trapping_div() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Ty::I64], Some(Ty::I64));
        let p = b.params()[0];
        let _d = b.bin(BinOp::Div, 1i64, p); // may trap: must stay
        b.ret(Some(p.into()));
        m.add_func(b.finish());
        assert!(!run(&mut m));
        assert_eq!(m.funcs[0].blocks[0].insts.len(), 1);
    }

    #[test]
    fn removes_dead_load() {
        let mut m = Module::new("t");
        let arr = m.add_array("a", ElemClass::Int, 4);
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
        let _v = b.load(Ty::I64, arr, 0i64);
        b.ret(Some(9i64.into()));
        m.add_func(b.finish());
        assert!(run(&mut m));
        assert!(m.funcs[0].blocks[0].insts.is_empty());
    }

    #[test]
    fn loop_carried_values_survive() {
        // s accumulates across a loop and is returned: nothing to remove.
        let mut m = ic_lang::compile(
            "t",
            "int main() { int s = 0; for (int i = 0; i < 4; i = i + 1) s = s + i; return s; }",
        )
        .unwrap();
        let before = m.num_insts();
        run(&mut m);
        // The loop's work must survive; only frontend temporaries may go.
        assert!(m.num_insts() + 2 >= before);
        ic_ir::verify::verify_module(&m).unwrap();
    }
}
