//! Property tests for the prefix-tree compilation cache: for *any*
//! sequence — including `ptr-compress` and `unroll*` in every relative
//! order — [`PrefixCache::apply_cached`] must produce IR **identical**
//! to cloning the base module and running [`apply_sequence`] from
//! scratch. Identity is checked through the `ic-ir` printer, so any
//! divergence in instructions, block structure, names, or layout fails.
//!
//! Each case shares one cache across a whole batch of sequences (plus
//! every proper prefix of each), so later lookups genuinely hit prefixes
//! cached by earlier ones — the property covers the reuse path, not just
//! cold compiles.

use ic_passes::{apply_sequence, Opt, PrefixCache, PrefixCacheConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

/// A program with loops, arrays, calls and pointer-shaped data so every
/// pass in the registry (unrolling, licm, ptr-compress, ...) has
/// something to chew on.
const SOURCE: &str = "
    ptr next[32]; int vals[32]; int out[8];
    int acc(int x) { return x * 3 - 1; }
    int main() {
        for (int i = 0; i < 32; i = i + 1) {
            next[i] = (i * 13 + 7) % 32;
            vals[i] = i * i - 4 * i;
        }
        int s = 0;
        int p = 5;
        for (int k = 0; k < 40; k = k + 1) {
            s = s + acc(vals[p]);
            p = next[p];
            out[k % 8] = s;
        }
        return s + out[3];
    }";

fn base_module() -> &'static ic_ir::Module {
    static MODULE: OnceLock<ic_ir::Module> = OnceLock::new();
    MODULE.get_or_init(|| ic_lang::compile("prefix_props", SOURCE).expect("valid MinC"))
}

/// Uncached ground truth: printer text and changed-pass count.
fn ground_truth(seq: &[Opt]) -> (String, usize) {
    let mut m = base_module().clone();
    let changed = apply_sequence(&mut m, seq);
    (ic_ir::print::module_to_string(&m), changed)
}

/// Check `cache` against ground truth for `seq` and all its prefixes
/// (longest first, so shorter lookups hit nodes the longer ones cached).
fn check_seq_and_prefixes(cache: &PrefixCache, seq: &[Opt]) {
    for k in (1..=seq.len()).rev() {
        let sub = &seq[..k];
        let (m, changed) = cache.apply_cached(sub);
        let (want_text, want_changed) = ground_truth(sub);
        assert_eq!(changed, want_changed, "changed-count diverged for {sub:?}");
        assert_eq!(
            ic_ir::print::module_to_string(&m),
            want_text,
            "IR diverged for {sub:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Arbitrary sequences over the full registry, batched through one
    /// shared cache.
    #[test]
    fn cached_matches_uncached_for_random_batches(
        seqs in prop::collection::vec(
            prop::collection::vec(prop::sample::select(Opt::ALL.to_vec()), 1..=6),
            1..=6,
        ),
    ) {
        let cache = PrefixCache::new(base_module().clone());
        for seq in &seqs {
            check_seq_and_prefixes(&cache, seq);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, stats.lookups());
    }

    /// The orderings the pipeline is most sensitive to: `ptr-compress`
    /// and the unroll variants permuted around the scalar cleanups.
    #[test]
    fn ptr_compress_and_unroll_orderings(
        seq in prop::collection::vec(
            prop::sample::select(vec![
                Opt::PtrCompress,
                Opt::Unroll2,
                Opt::Unroll4,
                Opt::Unroll8,
                Opt::Licm,
                Opt::Dce,
                Opt::Cse,
            ]),
            2..=5,
        ),
    ) {
        let cache = PrefixCache::new(base_module().clone());
        check_seq_and_prefixes(&cache, &seq);
        // And again: the second walk must be served from cached prefixes
        // without changing the answer.
        let before = cache.stats().misses;
        check_seq_and_prefixes(&cache, &seq);
        prop_assert!(cache.stats().misses >= before, "stats are monotone");
    }

    /// A byte budget small enough to force evictions mid-batch never
    /// changes results — eviction is a performance event, not a
    /// correctness event.
    #[test]
    fn identity_survives_evictions(
        seqs in prop::collection::vec(
            prop::collection::vec(prop::sample::select(Opt::ALL.to_vec()), 1..=5),
            2..=4,
        ),
    ) {
        let cache = PrefixCache::with_config(
            base_module().clone(),
            PrefixCacheConfig { byte_budget: 16 * 1024 },
        );
        for seq in &seqs {
            check_seq_and_prefixes(&cache, seq);
        }
    }
}
