//! Differential fuzzing with *generated* programs: a seeded generator
//! emits random (but always valid and terminating) MinC programs; every
//! optimization sequence must preserve their behaviour exactly.
//!
//! This complements `differential.rs` (hand-picked kernels) with breadth:
//! thousands of odd expression/control-flow shapes no human would write.

use ic_machine::{simulate_default, MachineConfig};
use ic_passes::{apply_sequence, Opt};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate a random, always-terminating MinC program.
///
/// Guarantees by construction:
/// * loops are bounded `for` loops with literal bounds;
/// * division/remainder only by non-zero literals;
/// * every variable is initialized at declaration;
/// * array indices are arbitrary ints (the IR wraps them safely).
struct Gen {
    rng: SmallRng,
    vars: Vec<String>,
    /// Names of live loop induction variables — never assignment targets,
    /// or loops could be reset into non-termination.
    loop_vars: Vec<String>,
    next_var: usize,
    depth: usize,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            rng: SmallRng::seed_from_u64(seed),
            vars: Vec::new(),
            loop_vars: Vec::new(),
            next_var: 0,
            depth: 0,
        }
    }

    fn expr(&mut self, depth: usize) -> String {
        if depth == 0 || self.rng.gen_bool(0.3) {
            // Leaf.
            match self.rng.gen_range(0..3) {
                0 if !self.vars.is_empty() => {
                    let i = self.rng.gen_range(0..self.vars.len());
                    self.vars[i].clone()
                }
                1 => format!("ga[{}]", self.small_expr()),
                _ => format!("{}", self.rng.gen_range(-50i64..50)),
            }
        } else {
            let a = self.expr(depth - 1);
            let b = self.expr(depth - 1);
            match self.rng.gen_range(0..10) {
                0 => format!("({a} + {b})"),
                1 => format!("({a} - {b})"),
                2 => format!("({a} * {b})"),
                3 => format!("({a} / {})", self.rng.gen_range(1..9)),
                4 => format!("({a} % {})", self.rng.gen_range(1..17)),
                5 => format!("({a} & {b})"),
                6 => format!("({a} ^ {b})"),
                7 => format!("({a} << {})", self.rng.gen_range(0..6)),
                8 => format!("({a} < {b})"),
                _ => format!("({a} | {b})"),
            }
        }
    }

    fn small_expr(&mut self) -> String {
        if !self.vars.is_empty() && self.rng.gen_bool(0.5) {
            let i = self.rng.gen_range(0..self.vars.len());
            self.vars[i].clone()
        } else {
            format!("{}", self.rng.gen_range(0..32))
        }
    }

    fn fresh(&mut self) -> String {
        let v = format!("v{}", self.next_var);
        self.next_var += 1;
        v
    }

    fn stmt(&mut self, out: &mut String, indent: usize) {
        let pad = "    ".repeat(indent);
        let choice = self.rng.gen_range(0..10);
        match choice {
            0 | 1 => {
                // declaration
                let e = self.expr(2);
                let v = self.fresh();
                out.push_str(&format!("{pad}int {v} = {e};\n"));
                self.vars.push(v);
            }
            2 | 3 => {
                let targets: Vec<&String> = self
                    .vars
                    .iter()
                    .filter(|v| !self.loop_vars.contains(v))
                    .collect();
                if targets.is_empty() {
                    let e = self.expr(2);
                    let v = self.fresh();
                    out.push_str(&format!("{pad}int {v} = {e};\n"));
                    self.vars.push(v);
                } else {
                    let v = targets[self.rng.gen_range(0..targets.len())].clone();
                    let e = self.expr(2);
                    out.push_str(&format!("{pad}{v} = {e};\n"));
                }
            }
            4 => {
                let idx = self.small_expr();
                let e = self.expr(2);
                out.push_str(&format!("{pad}ga[{idx}] = {e};\n"));
            }
            5 | 6 if self.depth < 2 => {
                // bounded for loop
                let v = self.fresh();
                let bound = self.rng.gen_range(2..16);
                let step = self.rng.gen_range(1..4);
                out.push_str(&format!(
                    "{pad}for (int {v} = 0; {v} < {bound}; {v} = {v} + {step}) {{\n"
                ));
                let saved = self.vars.len();
                self.vars.push(v.clone());
                self.loop_vars.push(v);
                self.depth += 1;
                let n = self.rng.gen_range(1..3);
                for _ in 0..n {
                    self.stmt(out, indent + 1);
                }
                self.depth -= 1;
                self.loop_vars.pop();
                // The loop variable and any body-scoped declarations go
                // out of scope at the closing brace.
                self.vars.truncate(saved);
                out.push_str(&format!("{pad}}}\n"));
            }
            7 | 8 => {
                // if / else
                let c = self.expr(1);
                out.push_str(&format!("{pad}if (({c}) & 1) {{\n"));
                let saved = self.vars.len();
                self.stmt(out, indent + 1);
                self.vars.truncate(saved);
                out.push_str(&format!("{pad}}} else {{\n"));
                self.stmt(out, indent + 1);
                self.vars.truncate(saved);
                out.push_str(&format!("{pad}}}\n"));
            }
            _ => {
                // call the helper
                let a = self.small_expr();
                let b = self.small_expr();
                let v = self.fresh();
                out.push_str(&format!("{pad}int {v} = mix({a}, {b});\n"));
                self.vars.push(v);
            }
        }
    }

    fn program(&mut self) -> String {
        let mut body = String::new();
        let n = self.rng.gen_range(4..10);
        for _ in 0..n {
            self.stmt(&mut body, 1);
        }
        // Checksum everything observable.
        let sum_vars = if self.vars.is_empty() {
            "0".to_string()
        } else {
            self.vars.join(" + ")
        };
        format!(
            "int ga[32];
int mix(int x, int y) {{
    int r = x * 31 + y;
    if (r < 0) r = -r;
    return r % 65536;
}}
int main() {{
{body}
    int check = {sum_vars};
    for (int gi = 0; gi < 32; gi = gi + 1) {{
        check = (check * 31 + ga[gi]) % 1000000007;
    }}
    return check;
}}"
        )
    }
}

fn behaviour(m: &ic_ir::Module) -> (Option<i64>, u64) {
    let r = simulate_default(m, &MachineConfig::test_tiny(), 20_000_000).expect("terminates");
    (r.ret_i64(), r.mem.checksum())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn generated_programs_survive_random_sequences(
        prog_seed in 0u64..1_000_000,
        seq in prop::collection::vec(prop::sample::select(Opt::ALL.to_vec()), 1..=6),
    ) {
        let src = Gen::new(prog_seed).program();
        let m0 = ic_lang::compile("fuzz", &src)
            .unwrap_or_else(|e| panic!("generator produced invalid MinC (seed {prog_seed}): {e}\n{src}"));
        let base = behaviour(&m0);

        let mut m1 = m0.clone();
        apply_sequence(&mut m1, &seq);
        ic_ir::verify::verify_module(&m1).expect("valid after passes");
        prop_assert_eq!(
            base, behaviour(&m1),
            "seed {} diverged under {:?}\n{}", prog_seed, seq, src
        );
    }
}

#[test]
fn generator_is_deterministic_and_diverse() {
    let a = Gen::new(7).program();
    let b = Gen::new(7).program();
    let c = Gen::new(8).program();
    assert_eq!(a, b);
    assert_ne!(a, c);
}

#[test]
fn ofast_on_a_generated_corpus() {
    // A quick fixed corpus sweep with the full pipeline (heavier than the
    // proptest cases, so fewer of them).
    for seed in [1u64, 17, 99, 4242, 31337] {
        let src = Gen::new(seed).program();
        let m0 = ic_lang::compile("fuzz", &src).unwrap();
        let base = behaviour(&m0);
        let mut m1 = m0.clone();
        apply_sequence(&mut m1, &ic_passes::ofast_sequence());
        assert_eq!(base, behaviour(&m1), "seed {seed}\n{src}");
    }
}
