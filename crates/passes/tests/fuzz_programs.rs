//! Differential fuzzing of the pass pipeline over the *suite generator's*
//! corpus: `ic_workloads::gen` emits seeded, self-checking MinC programs
//! (five kernel families, any seed, tiny size), and every optimization
//! sequence must preserve their behaviour exactly — both the full
//! `(return value, memory checksum)` bit-identity against the -O0 build,
//! and the generator's independently computed expected return value.
//!
//! This complements `differential.rs` (hand-picked kernels) with breadth:
//! the same families the 65-program registry is built from, at arbitrary
//! seeds the registry never pinned.

use ic_machine::{simulate_default, MachineConfig};
use ic_passes::{apply_sequence, Opt};
use ic_workloads::gen::{generate, Family, GenSpec, SizeClass};
use proptest::prelude::*;

fn behaviour(m: &ic_ir::Module) -> (Option<i64>, u64) {
    let r = simulate_default(m, &MachineConfig::test_tiny(), 20_000_000).expect("terminates");
    (r.ret_i64(), r.mem.checksum())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn generated_programs_survive_random_sequences(
        family in prop::sample::select(Family::ALL.to_vec()),
        seed in 0u64..1_000_000,
        seq in prop::collection::vec(prop::sample::select(Opt::ALL.to_vec()), 1..=6),
    ) {
        let spec = GenSpec { family, seed, size: SizeClass::Tiny };
        let g = generate(&spec);
        let m0 = ic_lang::compile(&spec.name(), &g.source)
            .unwrap_or_else(|e| panic!("generator produced invalid MinC ({spec:?}): {e}\n{}", g.source));
        let base = behaviour(&m0);
        // The -O0 run must already agree with the generator's Rust
        // mirror — otherwise the divergence is in the frontend or
        // simulator, not the passes.
        prop_assert_eq!(
            base.0, Some(g.expected),
            "-O0 disagrees with the mirror for {:?}", spec
        );

        let mut m1 = m0.clone();
        apply_sequence(&mut m1, &seq);
        ic_ir::verify::verify_module(&m1).expect("valid after passes");
        prop_assert_eq!(
            base, behaviour(&m1),
            "{:?} diverged under {:?}\n{}", spec, seq, g.source
        );
    }
}

#[test]
fn ofast_on_a_generated_corpus() {
    // A fixed corpus sweep with the full -Ofast pipeline (heavier than
    // the proptest cases, so fewer of them): one seed per family.
    for (family, seed) in Family::ALL.into_iter().zip([1u64, 17, 99, 4242, 31337]) {
        let spec = GenSpec {
            family,
            seed,
            size: SizeClass::Tiny,
        };
        let g = generate(&spec);
        let m0 = ic_lang::compile(&spec.name(), &g.source).unwrap();
        let base = behaviour(&m0);
        assert_eq!(base.0, Some(g.expected), "{spec:?}");
        let mut m1 = m0.clone();
        apply_sequence(&mut m1, &ic_passes::ofast_sequence());
        assert_eq!(base, behaviour(&m1), "{spec:?}\n{}", g.source);
    }
}

/// Regression promoted from `fuzz_programs.proptest-regressions`: the
/// previous ad-hoc generator's seed 637050 shrank to a `[ConstProp]`
/// divergence (constant-folding a negative shift amount). The program is
/// embedded verbatim so the case survives the generator's retirement.
#[test]
fn regression_constprop_on_seed_637050_program() {
    const SRC: &str = "int ga[32];
int mix(int x, int y) {
    int r = x * 31 + y;
    if (r < 0) r = -r;
    return r % 65536;
}
int main() {
    int v0 = ga[21];
    if ((-13) & 1) {
        v0 = ((v0 | 48) % 9);
    } else {
        for (int v1 = 0; v1 < 11; v1 = v1 + 2) {
            v0 = ((ga[26] | -37) << 1);
        }
    }
    int v2 = (ga[6] << 1);
    int v3 = ga[v0];

    int check = v0 + v2 + v3;
    for (int gi = 0; gi < 32; gi = gi + 1) {
        check = (check * 31 + ga[gi]) % 1000000007;
    }
    return check;
}";
    let m0 = ic_lang::compile("regression_637050", SRC).unwrap();
    let base = behaviour(&m0);
    let mut m1 = m0.clone();
    apply_sequence(&mut m1, &[Opt::ConstProp]);
    ic_ir::verify::verify_module(&m1).expect("valid after passes");
    assert_eq!(base, behaviour(&m1), "ConstProp diverged");
}
