//! Differential correctness: any sequence of optimizations must preserve
//! the observable behaviour (return value + final memory) of real MinC
//! programs when executed on the cycle-level simulator.
//!
//! This is the safety net the whole Fig. 2 experiment stands on — the
//! exhaustive search evaluates tens of thousands of random sequences, so
//! every sequence must be semantics-preserving.

use ic_machine::{simulate_default, MachineConfig};
use ic_passes::{apply_sequence, Opt};
use proptest::prelude::*;

/// Programs chosen to exercise every pass: loops (unroll/licm/schedule),
/// calls (inline), arrays (cse/load-motion), branches (simplify-cfg),
/// arithmetic idioms (const-*/strength-red/peephole), pointers
/// (ptr-compress).
const PROGRAMS: &[(&str, &str)] = &[
    (
        "arith_loop",
        "int main() {
            int s = 0;
            for (int i = 0; i < 37; i = i + 1) {
                s = s + i * 8 + (i % 3) - (i / 2);
            }
            return s;
        }",
    ),
    (
        "nested_memory",
        "int a[32]; int b[32];
        int main() {
            for (int i = 0; i < 32; i = i + 1) a[i] = i * 3 + 1;
            int s = 0;
            for (int i = 0; i < 8; i = i + 1) {
                for (int j = 0; j < 32; j = j + 1) {
                    b[j] = a[j] * 2 + a[0];
                    s = s + b[j];
                }
            }
            return s;
        }",
    ),
    (
        "calls_and_branches",
        "int g[4];
        int clamp(int x) { if (x > 20) return 20; if (x < 0) return 0; return x; }
        int step(int x) { g[0] = g[0] + 1; return clamp(x * 3 - 7); }
        int main() {
            int s = 0;
            for (int i = 0; i < 25; i = i + 1) {
                s = s + step(i);
                if (s > 100 && i % 2 == 0) s = s - 5;
            }
            return s + g[0];
        }",
    ),
    (
        "pointer_chase",
        "ptr next[64]; int vals[64];
        int main() {
            for (int i = 0; i < 64; i = i + 1) {
                next[i] = (i * 17 + 5) % 64;
                vals[i] = i * i;
            }
            int s = 0;
            int p = 3;
            for (int k = 0; k < 200; k = k + 1) {
                s = s + vals[p];
                p = next[p];
            }
            return s;
        }",
    ),
    (
        "float_kernel",
        "float x[16]; float y[16];
        int main() {
            for (int i = 0; i < 16; i = i + 1) {
                x[i] = (float)i * 0.5;
            }
            float acc = 0.0;
            for (int i = 0; i < 16; i = i + 1) {
                y[i] = x[i] * 2.0 + 1.0;
                acc = acc + y[i] * x[i];
            }
            return (int)acc;
        }",
    ),
    (
        "early_exit",
        "int main() {
            int s = 0;
            for (int i = 0; i < 1000; i = i + 1) {
                if (i == 53) break;
                if (i % 7 == 0) continue;
                s = s + i;
            }
            int j = 0;
            while (j < 10) { s = s + 2; j = j + 1; }
            return s;
        }",
    ),
];

fn behaviour(m: &ic_ir::Module, cfg: &MachineConfig) -> (Option<i64>, u64) {
    let r = simulate_default(m, cfg, 100_000_000).expect("program terminates");
    (r.ret_i64(), r.mem.checksum())
}

fn opt_strategy() -> impl Strategy<Value = Opt> {
    prop::sample::select(Opt::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_sequences_preserve_semantics(
        seq in prop::collection::vec(opt_strategy(), 1..=6),
        prog_idx in 0usize..PROGRAMS.len(),
    ) {
        let (name, src) = PROGRAMS[prog_idx];
        let m0 = ic_lang::compile(name, src).expect("compiles");
        let cfg = MachineConfig::test_tiny();
        let base = behaviour(&m0, &cfg);

        let mut m1 = m0.clone();
        apply_sequence(&mut m1, &seq);
        ic_ir::verify::verify_module(&m1).expect("valid after passes");
        let opt = behaviour(&m1, &cfg);

        prop_assert_eq!(base, opt, "program {} diverged under {:?}", name, seq);
    }
}

#[test]
fn paper_13_each_single_pass_safe() {
    let cfg = MachineConfig::vliw_c6713_like();
    for (name, src) in PROGRAMS {
        let m0 = ic_lang::compile(name, src).unwrap();
        let base = behaviour(&m0, &cfg);
        for opt in Opt::ALL {
            let mut m1 = m0.clone();
            apply_sequence(&mut m1, &[opt]);
            assert_eq!(
                base,
                behaviour(&m1, &cfg),
                "{} diverged under single pass {}",
                name,
                opt.name()
            );
        }
    }
}

#[test]
fn ofast_pipeline_safe_and_not_slower() {
    let cfg = MachineConfig::vliw_c6713_like();
    for (name, src) in PROGRAMS {
        let m0 = ic_lang::compile(name, src).unwrap();
        let r0 = simulate_default(&m0, &cfg, 100_000_000).unwrap();
        let mut m1 = m0.clone();
        apply_sequence(&mut m1, &ic_passes::ofast_sequence());
        let r1 = simulate_default(&m1, &cfg, 100_000_000).unwrap();
        assert_eq!(r0.ret_i64(), r1.ret_i64(), "{name}");
        assert_eq!(r0.mem.checksum(), r1.mem.checksum(), "{name}");
        // -Ofast should never slow a program down by more than noise.
        assert!(
            r1.cycles() as f64 <= r0.cycles() as f64 * 1.10,
            "{name}: Ofast {} vs O0 {}",
            r1.cycles(),
            r0.cycles()
        );
    }
}

#[test]
fn repeated_application_is_stable() {
    // Applying the same pass twice must keep semantics (idempotence is not
    // required, stability is).
    let cfg = MachineConfig::test_tiny();
    for (name, src) in PROGRAMS {
        let m0 = ic_lang::compile(name, src).unwrap();
        let base = behaviour(&m0, &cfg);
        for opt in [
            Opt::Dce,
            Opt::Cse,
            Opt::SimplifyCfg,
            Opt::Licm,
            Opt::Schedule,
        ] {
            let mut m1 = m0.clone();
            apply_sequence(&mut m1, &[opt, opt, opt]);
            assert_eq!(base, behaviour(&m1, &cfg), "{name} under 3x {}", opt.name());
        }
    }
}
